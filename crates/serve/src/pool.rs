//! The real worker pool: long-lived threads replaying the admitted
//! stream against the shared snapshots.
//!
//! This is the half of the benchmark that actually exercises the
//! contention story: `threads` workers pull requests from one atomic
//! cursor and execute them through the lock-striped caches against
//! `Arc`-shared databases. Wall time and throughput here are advisory
//! (they depend on the machine); the deterministic counters are the
//! executed/error totals and the merged per-worker service histogram,
//! which depend only on the admitted stream and the fuel model.

use evalkit::{note_pool_width, LatencyHistogram};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::admission::{class_key, AdmissionPolicy, QueryClass};
use crate::snapshot::ServeState;
use crate::workload::{Request, RequestKind};

/// Outcome of replaying one admitted stream on the real pool.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Requests executed (deterministic: one per admitted request).
    pub executed: u64,
    /// Engine errors among them (budget aborts included).
    pub exec_errors: u64,
    /// Worker panics caught at the pool boundary. Deterministically
    /// zero unless the engine itself is broken.
    pub escaped_panics: u64,
    /// Per-worker simulated-service histograms, merged. Exercises the
    /// shard-merge path; bucket totals are deterministic because the
    /// admitted set and the fuel model are.
    pub service_hist: LatencyHistogram,
    /// Wall seconds for the replay (advisory).
    pub wall_s: f64,
    pub threads: usize,
}

impl PoolReport {
    /// Executions per wall second (advisory).
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.executed as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Replays the admitted subset of `requests` on `threads` long-lived
/// workers. Work distribution is dynamic (atomic cursor), panics are
/// isolated per request, and each worker keeps private counters that
/// are merged once at join — there is no shared mutable state beyond
/// the cursor and the striped caches under test.
pub fn replay(
    state: &ServeState,
    requests: &[Request],
    admitted: &[bool],
    classes: &HashMap<(footballdb::DataModel, String), QueryClass>,
    threads: usize,
    policy: &AdmissionPolicy,
) -> PoolReport {
    let threads = threads.max(1);
    note_pool_width(threads);
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();

    struct WorkerTally {
        executed: u64,
        exec_errors: u64,
        escaped_panics: u64,
        hist: LatencyHistogram,
    }

    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut tally = WorkerTally {
                        executed: 0,
                        exec_errors: 0,
                        escaped_panics: 0,
                        hist: LatencyHistogram::default(),
                    };
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        if !admitted[i] {
                            continue;
                        }
                        tally.executed += 1;
                        match req.kind {
                            RequestKind::NoSql => {
                                tally.hist.record(policy.service_floor_s);
                            }
                            _ => {
                                let class = classes
                                    .get(&class_key(req.model, &req.sql))
                                    .expect("admitted queries were classified");
                                tally.hist.record(class.service_s);
                                let run = catch_unwind(AssertUnwindSafe(|| {
                                    state.cache(req.model).execute_budgeted(
                                        state.db(req.model),
                                        &req.sql,
                                        &policy.budget,
                                    )
                                }));
                                match run {
                                    Ok(Ok(_)) => {}
                                    Ok(Err(_)) => tally.exec_errors += 1,
                                    Err(_) => tally.escaped_panics += 1,
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut report = PoolReport {
        executed: 0,
        exec_errors: 0,
        escaped_panics: 0,
        service_hist: LatencyHistogram::default(),
        wall_s: start.elapsed().as_secs_f64(),
        threads,
    };
    for t in &tallies {
        report.executed += t.executed;
        report.exec_errors += t.exec_errors;
        report.escaped_panics += t.escaped_panics;
        report.service_hist.merge(&t.hist);
    }
    report
}
