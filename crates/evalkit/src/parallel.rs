//! Deterministic scoped-thread fan-out for the experiment grid.
//!
//! The evaluation workload is embarrassingly parallel at two levels:
//! whole `(system × data model × budget)` configurations, and the
//! per-item loop inside one configuration. Every unit is
//! order-independent by construction — the seeded [`xrng::Rng`] is
//! forked per unit from a *label* (`system/model/budget/item`), never
//! from a shared mutable stream — so running units on worker threads and
//! collecting results **by index** reproduces the serial output
//! bit-for-bit.
//!
//! Thread count resolution, in priority order:
//! 1. [`set_thread_override`] (used by the benchmark harness and tests);
//! 2. the `REPRO_THREADS` environment variable (`REPRO_THREADS=1` is
//!    the serial reference path);
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested calls never oversubscribe: a worker thread that reaches
//! another [`par_map`] runs it inline, so the grid level fans out and
//! the item level reuses the same workers.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// 0 = no override; otherwise the forced thread count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested `par_map` calls run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Forces the pool width, bypassing `REPRO_THREADS` and the hardware
/// default. `None` restores normal resolution. Affects the whole
/// process; intended for benchmark baselines and determinism tests.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Widest pool actually spawned by any `par_map` call so far.
static OBSERVED_POOL: AtomicUsize = AtomicUsize::new(0);

/// The largest worker-pool width any [`par_map`] call has actually used
/// since the last [`reset_observed_threads`] — `1` when every call so
/// far ran serially (small input, single-thread config, or nested). The
/// benchmark harness records this instead of [`configured_threads`],
/// which only reports what *would* be used and can disagree with
/// reality (e.g. inputs shorter than the configured width).
pub fn observed_threads() -> usize {
    OBSERVED_POOL.load(Ordering::SeqCst).max(1)
}

/// Zeroes the observed pool-width watermark (benchmark harness).
pub fn reset_observed_threads() {
    OBSERVED_POOL.store(0, Ordering::SeqCst);
}

/// Reports an externally-managed worker pool into the
/// [`observed_threads`] watermark. `par_map` records its own pools;
/// long-lived pools that bypass it (the serving layer's worker pool)
/// call this once at spawn so benchmark records attribute their
/// speedup to the width that actually ran.
pub fn note_pool_width(threads: usize) {
    OBSERVED_POOL.fetch_max(threads, Ordering::SeqCst);
}

/// The worker count `par_map` would use right now.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(var) = std::env::var("REPRO_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order.
///
/// Determinism does not depend on scheduling: workers pull indices from
/// an atomic counter, and each result lands in its input slot. With one
/// configured thread (or when already inside a pool) this is exactly
/// `items.iter().map(f).collect()`. A panic in any unit propagates, as
/// in the serial path.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = configured_threads().min(items.len());
    if threads <= 1 || IN_POOL.with(Cell::get) {
        if !items.is_empty() && !IN_POOL.with(Cell::get) {
            OBSERVED_POOL.fetch_max(1, Ordering::SeqCst);
        }
        return items.iter().map(f).collect();
    }
    OBSERVED_POOL.fetch_max(threads, Ordering::SeqCst);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    // A send only fails when the receiver is gone, which
                    // cannot happen while the scope holds it alive.
                    let _ = tx.send((i, f(item)));
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, value) in rx {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched exactly once"))
        .collect()
}

/// [`par_map`] with per-unit panic isolation: a unit that panics yields
/// `Err(message)` in its slot instead of poisoning the whole fan-out.
///
/// The catch wraps the unit closure itself, identically on the serial
/// and pooled paths, so outcomes are bit-identical at any
/// `REPRO_THREADS` — a panicking unit is `Err` everywhere and its
/// neighbors are unaffected. (Rust's default panic hook still prints
/// the panic message; drivers that inject panics on purpose install a
/// quiet hook.) Aborting panics (`panic = "abort"`) cannot be isolated;
/// the workspace uses unwinding.
pub fn par_map_catch<T, U, F>(items: &[T], f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map(items, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_input_order() {
        set_thread_override(Some(4));
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&i| i * 2);
        set_thread_override(None);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        set_thread_override(Some(1));
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map(&items, |&i| i.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_thread_override(Some(8));
        let parallel = par_map(&items, |&i| i.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_thread_override(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_calls_run_inline() {
        set_thread_override(Some(4));
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..8).collect();
            par_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        set_thread_override(None);
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn catch_isolates_panicking_units() {
        // Quiet hook: the injected panics below are expected output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<usize> = (0..50).collect();
        let run = |threads: usize| {
            set_thread_override(Some(threads));
            let out = par_map_catch(&items, |&i| {
                if i % 7 == 3 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            set_thread_override(None);
            out
        };
        let serial = run(1);
        let pooled = run(8);
        std::panic::set_hook(prev);
        assert_eq!(serial, pooled, "panic isolation must be thread-invariant");
        for (i, r) in serial.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(*r, Err(format!("boom at {i}")));
            } else {
                assert_eq!(*r, Ok(i * 2));
            }
        }
    }

    #[test]
    fn external_pools_raise_the_watermark() {
        // Watermark state is process-global; this test only asserts
        // monotonicity (fetch_max), which holds regardless of what
        // other tests have recorded concurrently.
        note_pool_width(6);
        assert!(observed_threads() >= 6);
        let before = observed_threads();
        note_pool_width(2);
        assert!(observed_threads() >= before, "fetch_max never lowers");
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }
}
