//! The EX-vs-schema-distance sweep over synthesized morph models.
//!
//! The source paper measures data-model robustness at exactly three
//! points (v1/v2/v3). `footballdb::morph` synthesizes dozens of
//! behavior-equivalent models at known edit distances from v1; this
//! module runs the simulated systems over each of them and reports EX as
//! a function of schema distance — per (system, model, hardness).
//!
//! Mechanics mirror [`crate::experiment`] exactly — stratified success
//! draws from a label-forked RNG, governed predictions, per-item panic
//! isolation — but the data-model axis is an arbitrary morphed
//! [`Database`] instead of the three built-ins. Degradation with distance
//! is *emergent*, not scripted: the co-rewritten gold SQL on a distant
//! model has more joins (splits), reclassified hardness, a wider lexical
//! gap between question vocabulary and renamed identifiers, and (for the
//! IR-based system) SemQL reconstructions that no longer round-trip on
//! the morphed join graph. All of those feed the same capability model
//! the v1/v2/v3 experiments use.

use std::fmt::Write as _;

use footballdb::DataModel;
use nlq::GoldExample;
use sqlengine::{Database, QueryCache};
use sqlkit::Hardness;
use textosql::{
    predict_governed, profile_items_with_db, success_probabilities, Budget, JoinGraph,
    RetrievalIndex, SystemContext, SystemKind,
};
use xrng::Rng;

use crate::experiment::{weighted_success_set, Governor, ItemResult};
use crate::metric::{accuracy, execution_match_governed, ExOutcome, FailureKind};
use crate::metrics::ItemTrace;
use crate::parallel::par_map_catch;

/// Identity of one synthesized model inside the sweep.
#[derive(Debug, Clone)]
pub struct MorphModelSpec {
    /// Model name (`v1` for the distance-0 baseline, else `mNN`).
    pub name: String,
    /// Edit distance of the model's transform chain from v1.
    pub distance: usize,
    /// Human-readable chain description.
    pub chain: String,
}

/// One (system, morphed model) run over the rewritten test set.
#[derive(Debug, Clone)]
pub struct MorphRun {
    pub system: SystemKind,
    pub model: String,
    pub distance: usize,
    pub items: Vec<ItemResult>,
}

impl MorphRun {
    pub fn accuracy(&self) -> f64 {
        accuracy(&self.items.iter().map(|i| i.outcome).collect::<Vec<_>>())
    }

    /// `(hardness, n, EX)` per hardness class, in [`Hardness::ALL`] order.
    pub fn hardness_accuracy(&self) -> Vec<(Hardness, usize, f64)> {
        Hardness::ALL
            .iter()
            .map(|&h| {
                let outcomes: Vec<ExOutcome> = self
                    .items
                    .iter()
                    .filter(|i| i.hardness == h)
                    .map(|i| i.outcome)
                    .collect();
                (h, outcomes.len(), accuracy(&outcomes))
            })
            .collect()
    }

    /// Items that degraded to a caught panic (must stay zero in a clean
    /// sweep: the governor isolates panics, the sweep must not produce
    /// any).
    pub fn panics(&self) -> usize {
        self.items
            .iter()
            .filter(|i| i.failure == Some(FailureKind::Panic))
            .count()
    }
}

/// The canonical per-system budget of the headline experiments:
/// fine-tuned systems at 300 training examples, GPT-3.5 at 30 shots,
/// LLaMA2 at 8 (the figure configurations of the paper runs).
pub fn canonical_budget(system: SystemKind) -> Budget {
    match system {
        SystemKind::Gpt35 => Budget::FewShot(30),
        SystemKind::Llama2 => Budget::FewShot(8),
        _ => Budget::FineTuned(300),
    }
}

/// Run every system over one morphed model. `items` is the test set and
/// `pool` the train/shot pool, both already co-rewritten onto the model
/// (v1 SQL slot). Deterministic in `(seed, spec, inputs)` at any thread
/// count; each item is panic-isolated.
pub fn run_morph_model(
    seed: u64,
    spec: &MorphModelSpec,
    db: &Database,
    cache: &QueryCache,
    items: &[GoldExample],
    pool: &[GoldExample],
    governor: &Governor,
) -> Vec<MorphRun> {
    let graph = JoinGraph::from_catalog(db.catalog());
    let profiles = profile_items_with_db(items, DataModel::V1, &graph, Some(db));
    let index = RetrievalIndex::build(pool);
    let root = Rng::new(seed ^ 0x5eed);

    SystemKind::ALL
        .iter()
        .map(|&system| {
            let budget = canonical_budget(system);
            let probs = success_probabilities(system, DataModel::V1, budget, &profiles);
            let cell_root = root.fork(&format!("morph/{}/{system}", spec.name));
            let mut draw_rng = cell_root.fork("stratified-draw");
            let expected: f64 = probs.iter().sum();
            let count = (expected.round().max(0.0) as usize).min(probs.len());
            let successes = weighted_success_set(&probs, count, &mut draw_rng);

            let idx: Vec<usize> = (0..items.len()).collect();
            let caught = par_map_catch(&idx, |&i| {
                let item = &items[i];
                let ctx = SystemContext {
                    model: DataModel::V1,
                    db,
                    graph: &graph,
                    index: Some(&index),
                    budget,
                };
                let mut rng = cell_root.fork(&format!("item/{i}"));
                let p = if successes[i] { 1.0 } else { 0.0 };
                let g = predict_governed(
                    system,
                    item,
                    &ctx,
                    p,
                    &mut rng,
                    governor.fault_plan.as_ref(),
                    &governor.retry,
                );
                let trace_guard = sqlengine::TraceGuard::install();
                let (outcome, mut failure) = execution_match_governed(
                    db,
                    cache,
                    &governor.budget,
                    item.sql(DataModel::V1),
                    g.prediction.sql.as_deref(),
                );
                let trace = ItemTrace::from_span(&trace_guard.finish());
                if g.gave_up {
                    failure = Some(FailureKind::ProviderError);
                }
                ItemResult {
                    item_id: item.id,
                    outcome,
                    failure,
                    predicted_sql: g.prediction.sql.clone(),
                    latency: g.prediction.latency,
                    shots_used: g.prediction.shots_used,
                    hardness: profiles[i].hardness,
                    stats: profiles[i].stats,
                    trace,
                    fault: g.fault,
                    retries: g.retries,
                    gave_up: g.gave_up,
                }
            });
            let results: Vec<ItemResult> = caught
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    r.unwrap_or_else(|_| ItemResult {
                        item_id: items[i].id,
                        outcome: ExOutcome::ExecError,
                        failure: Some(FailureKind::Panic),
                        predicted_sql: None,
                        latency: 0.0,
                        shots_used: 0,
                        hardness: profiles[i].hardness,
                        stats: profiles[i].stats,
                        trace: ItemTrace::default(),
                        fault: None,
                        retries: 0,
                        gave_up: false,
                    })
                })
                .collect();
            MorphRun {
                system,
                model: spec.name.clone(),
                distance: spec.distance,
                items: results,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Aggregation + rendering
// ---------------------------------------------------------------------------

/// Distance buckets for the headline table. Bucket 0 is the v1 baseline.
pub const DISTANCE_BUCKETS: [(usize, usize, &str); 5] = [
    (0, 0, "0 (v1)"),
    (1, 2, "1-2"),
    (3, 5, "3-5"),
    (6, 9, "6-9"),
    (10, usize::MAX, "10+"),
];

fn bucket_label(distance: usize) -> &'static str {
    DISTANCE_BUCKETS
        .iter()
        .find(|(lo, hi, _)| distance >= *lo && distance <= *hi)
        .map(|(_, _, l)| *l)
        .expect("buckets cover all distances")
}

/// Deterministic JSON for the sweep: per-(model, system) EX with hardness
/// breakdown, sorted by (distance, model, system name). Byte-identical
/// across runs and thread counts because every number derives from
/// deterministic per-item outcomes.
pub fn sweep_json(runs: &[MorphRun]) -> String {
    let mut sorted: Vec<&MorphRun> = runs.iter().collect();
    sorted.sort_by(|a, b| {
        (a.distance, &a.model, a.system.name()).cmp(&(b.distance, &b.model, b.system.name()))
    });
    let mut out = String::from("[");
    for (i, r) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut hard = String::from("{");
        for (j, (h, n, ex)) in r.hardness_accuracy().iter().enumerate() {
            if j > 0 {
                hard.push(',');
            }
            let _ = write!(hard, "\"{}\": {{\"n\": {n}, \"ex\": {ex:.4}}}", h.label());
        }
        hard.push('}');
        let _ = write!(
            out,
            "\n    {{\"model\": \"{}\", \"distance\": {}, \"system\": \"{}\", \
             \"items\": {}, \"ex\": {:.4}, \"panics\": {}, \"hardness\": {hard}}}",
            r.model,
            r.distance,
            r.system.name(),
            r.items.len(),
            r.accuracy(),
            r.panics()
        );
    }
    out.push_str("\n  ]");
    out
}

/// The headline text table: mean EX per (distance bucket, system), with
/// the number of models contributing to each bucket. This is the result
/// surface the source paper could not reach with three hand-built models.
pub fn distance_table(runs: &[MorphRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EX vs schema distance (mean over synthesized models per bucket)"
    );
    let _ = write!(out, "{:<10}{:>8}", "distance", "models");
    for s in SystemKind::ALL {
        let _ = write!(out, "{:>16}", s.name());
    }
    let _ = writeln!(out);
    for (lo, hi, label) in DISTANCE_BUCKETS {
        let in_bucket: Vec<&MorphRun> = runs
            .iter()
            .filter(|r| r.distance >= lo && r.distance <= hi)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mut models: Vec<&str> = in_bucket.iter().map(|r| r.model.as_str()).collect();
        models.sort_unstable();
        models.dedup();
        let _ = write!(out, "{label:<10}{:>8}", models.len());
        for s in SystemKind::ALL {
            let of_system: Vec<&&MorphRun> = in_bucket.iter().filter(|r| r.system == s).collect();
            if of_system.is_empty() {
                let _ = write!(out, "{:>16}", "-");
            } else {
                let mean: f64 =
                    of_system.iter().map(|r| r.accuracy()).sum::<f64>() / of_system.len() as f64;
                let _ = write!(out, "{:>15.1}%", mean * 100.0);
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(bucket of a model = {})",
        DISTANCE_BUCKETS
            .iter()
            .map(|(_, _, l)| *l)
            .collect::<Vec<_>>()
            .join(" | ")
    );
    out
}

/// Sanity helper for drivers: the bucket a model lands in.
pub fn bucket_of(distance: usize) -> &'static str {
    bucket_label(distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_distances() {
        for d in 0..100 {
            let _ = bucket_of(d);
        }
        assert_eq!(bucket_of(0), "0 (v1)");
        assert_eq!(bucket_of(4), "3-5");
        assert_eq!(bucket_of(25), "10+");
    }

    #[test]
    fn canonical_budgets_match_headline_runs() {
        assert_eq!(canonical_budget(SystemKind::Gpt35), Budget::FewShot(30));
        assert_eq!(canonical_budget(SystemKind::Llama2), Budget::FewShot(8));
        assert_eq!(
            canonical_budget(SystemKind::ValueNet),
            Budget::FineTuned(300)
        );
    }
}
