//! The experiment harness.
//!
//! Owns the full evaluation state (domain, three database instances,
//! join graphs, gold benchmark) and runs the paper's experiment grid:
//! fine-tuned systems over train-set sizes (Table 5), LLMs over few-shot
//! folds (Table 6), and the latency measurements (Table 7).
//!
//! Grids are scheduled flat: each table's cells are *prepared* (pools,
//! success draws, retrieval indexes) and then every `(cell, item)` pair
//! joins one shared [`run_prepared`] fan-out, so a straggler cell can't
//! pin a worker while its siblings sit idle. Item RNGs are forked by
//! label, which makes the flat schedule bit-identical to the nested one.

use crate::metric::{accuracy, execution_match_governed, ExOutcome, FailureKind};
use crate::metrics::ItemTrace;
use crate::parallel::{par_map, par_map_catch};
use footballdb::{generate, load, DataModel, Domain};
use nlq::gold::{build_benchmark, PipelineConfig};
use nlq::{Benchmark, GoldExample};
use sqlengine::{current_dialect, CacheStats, Database, Dialect, ExecBudget, QueryCache};
use sqlkit::{Hardness, QueryStats};
use textosql::{
    predict_governed, profile_items_with_db, success_probabilities, Budget, FaultKind, FaultPlan,
    ItemProfile, JoinGraph, RetrievalIndex, RetryPolicy, SystemContext, SystemKind,
};
use xrng::Rng;

/// Everything needed to run experiments.
pub struct EvalSetup {
    pub domain: Domain,
    pub databases: Vec<(DataModel, Database)>,
    pub graphs: Vec<(DataModel, JoinGraph)>,
    pub benchmark: Benchmark,
    pub seed: u64,
    /// The SQL dialect active when this setup was built. Profiling
    /// executes the gold queries, so the difficulty profiles (and every
    /// accuracy number derived from them) are tied to one backend's
    /// semantics. Scoring is pinnable to either backend: run the whole
    /// experiment under `REPRO_DIALECT=sqlite` (or
    /// [`sqlengine::set_dialect`]) and the setup records it here;
    /// [`run_prepared`] refuses to score under a different dialect than
    /// the one the setup was profiled under.
    pub dialect: Dialect,
    /// Memoized test-set difficulty profiles per data model (profiling
    /// executes the gold queries, so it is computed once).
    profiles: Vec<(DataModel, Vec<ItemProfile>)>,
    /// Query-result memo tables, one per data model database. Gold SQL
    /// is shared by every configuration of a model and repeated
    /// predictions are common, so each distinct query executes once.
    caches: Vec<(DataModel, QueryCache)>,
}

impl EvalSetup {
    /// Full-size setup matching the paper (400 selected, 300/100 split).
    pub fn paper_scale(seed: u64) -> EvalSetup {
        EvalSetup::with_config(seed, &PipelineConfig::default())
    }

    /// A reduced setup for fast tests.
    pub fn small(seed: u64) -> EvalSetup {
        EvalSetup::with_config(
            seed,
            &PipelineConfig {
                raw_questions: 700,
                pool_size: 260,
                selected_size: 120,
                test_size: 40,
                clusters: 13,
                ..PipelineConfig::default()
            },
        )
    }

    pub fn with_config(seed: u64, cfg: &PipelineConfig) -> EvalSetup {
        let domain = generate(footballdb::DEFAULT_SEED);
        // The three database loads are independent; fan them out.
        let databases: Vec<(DataModel, Database)> =
            par_map(&DataModel::ALL, |&m| (m, load(&domain, m)));
        let graphs = DataModel::ALL
            .iter()
            .map(|m| (*m, JoinGraph::from_catalog(&m.catalog())))
            .collect();
        let benchmark = build_benchmark(&domain, seed, cfg);
        let mut setup = EvalSetup {
            domain,
            databases,
            graphs,
            benchmark,
            seed,
            dialect: current_dialect(),
            profiles: Vec::new(),
            caches: DataModel::ALL
                .iter()
                .map(|&m| (m, QueryCache::new()))
                .collect(),
        };
        // Profiling executes every gold test query against each model's
        // database — the expensive part of setup, also independent.
        setup.profiles = par_map(&DataModel::ALL, |&m| {
            (
                m,
                profile_items_with_db(&setup.benchmark.test, m, setup.graph(m), Some(setup.db(m))),
            )
        });
        setup
    }

    pub fn db(&self, model: DataModel) -> &Database {
        &self.databases.iter().find(|(m, _)| *m == model).unwrap().1
    }

    pub fn graph(&self, model: DataModel) -> &JoinGraph {
        &self.graphs.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// Memoized test-set profiles for one data model.
    pub fn profiles(&self, model: DataModel) -> &[ItemProfile] {
        &self.profiles.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// The query-result memo table for one data model's database.
    pub fn query_cache(&self, model: DataModel) -> &QueryCache {
        &self.caches.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// Aggregated hit/miss counters over all three model caches.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
            oversize: 0,
            builds: 0,
        };
        for (_, cache) in &self.caches {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
            total.oversize += s.oversize;
            total.builds += s.builds;
        }
        total
    }

    /// Aggregated index build/probe counters over all three model
    /// databases (the engine builds hash indexes lazily on first use).
    pub fn index_stats(&self) -> sqlengine::IndexStats {
        let mut total = sqlengine::IndexStats::default();
        for (_, db) in &self.databases {
            let s = db.index_stats();
            total.builds += s.builds;
            total.probes += s.probes;
            total.hits += s.hits;
        }
        total
    }

    /// Drops every memoized result and zeroes the counters (used by the
    /// benchmark harness to measure cold-cache baselines).
    pub fn clear_query_caches(&self) {
        for (_, cache) in &self.caches {
            cache.clear();
        }
    }

    /// Enables or disables memoization on all three caches.
    pub fn set_query_caches_enabled(&self, enabled: bool) {
        for (_, cache) in &self.caches {
            cache.set_enabled(enabled);
        }
    }
}

/// Per-item evaluation record.
#[derive(Debug, Clone)]
pub struct ItemResult {
    pub item_id: usize,
    pub outcome: ExOutcome,
    /// The classified failure when `outcome` is not correct (graceful
    /// degradation); `None` for correct items.
    pub failure: Option<FailureKind>,
    /// The SQL the system produced (post-processed), kept so the
    /// forensics layer can align it clause-by-clause against gold.
    /// `None` when the provider produced nothing or the worker panicked.
    pub predicted_sql: Option<String>,
    pub latency: f64,
    pub shots_used: usize,
    pub hardness: Hardness,
    pub stats: QueryStats,
    /// Per-stage trace summary of this item's execution-match step
    /// (scoped per item via a thread-local collector, so concurrent
    /// items never cross-contaminate).
    pub trace: ItemTrace,
    /// The injected fault the provider surfaced for this item, if any.
    pub fault: Option<FaultKind>,
    /// Retries spent recovering from transient faults.
    pub retries: u32,
    /// Whether the provider exhausted every retry.
    pub gave_up: bool,
}

/// One configuration's run over the test set.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub system: SystemKind,
    pub model: DataModel,
    pub budget: Budget,
    pub items: Vec<ItemResult>,
}

impl RunResult {
    pub fn accuracy(&self) -> f64 {
        accuracy(&self.items.iter().map(|i| i.outcome).collect::<Vec<_>>())
    }

    pub fn latencies(&self) -> Vec<f64> {
        self.items.iter().map(|i| i.latency).collect()
    }

    /// Failure counts over every taxonomy entry, in [`FailureKind::ALL`]
    /// order (zero-count kinds included, so rows line up across runs).
    pub fn failure_counts(&self) -> Vec<(FailureKind, usize)> {
        FailureKind::ALL
            .iter()
            .map(|&k| {
                let n = self.items.iter().filter(|i| i.failure == Some(k)).count();
                (k, n)
            })
            .collect()
    }
}

/// Robustness governance for one run: what faults to inject, how to
/// retry transient ones, and how much fuel each predicted query may
/// burn. The default governor injects nothing and applies the default
/// engine budget, making [`run_config`] a governed run with a no-op
/// fault plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct Governor {
    pub fault_plan: Option<FaultPlan>,
    pub retry: RetryPolicy,
    pub budget: ExecBudget,
}

/// Runs one (system, data model, budget) configuration over the test
/// set. `train_pool` is the fine-tuning set or the few-shot pool.
/// Equivalent to [`run_config_governed`] with the default (no-fault)
/// governor.
pub fn run_config(
    setup: &EvalSetup,
    system: SystemKind,
    model: DataModel,
    budget: Budget,
    train_pool: &[GoldExample],
    run_label: &str,
) -> RunResult {
    run_config_governed(
        setup,
        system,
        model,
        budget,
        train_pool,
        run_label,
        &Governor::default(),
    )
}

/// One grid cell, prepared for the flat `(cell × item)` fan-out: the
/// configuration plus its *owned* shot/training pool. Preparation is
/// cheap and deterministic; the expensive per-item work happens in
/// [`run_prepared`].
pub struct PreparedConfig {
    pub system: SystemKind,
    pub model: DataModel,
    pub budget: Budget,
    pub pool: Vec<GoldExample>,
    pub run_label: String,
    pub governor: Governor,
}

/// Per-cell derived state: the root RNG (forked from the run label) and
/// the stratified success draw. Computed once per cell so every item of
/// the cell sees the same draw regardless of which worker runs it.
struct CellState {
    root: Rng,
    successes: Vec<bool>,
}

fn cell_state(setup: &EvalSetup, cfg: &PreparedConfig) -> CellState {
    let (system, model, budget) = (cfg.system, cfg.model, cfg.budget);
    let profiles = setup.profiles(model);
    let probs = success_probabilities(system, model, budget, profiles);
    let root = Rng::new(setup.seed ^ 0x5eed).fork(&cfg.run_label);

    // Stratified success draw: instead of independent Bernoulli draws
    // (whose binomial noise would swamp a 100-item test set), select a
    // success *set* whose size matches the expected total, sampling
    // without replacement weighted by the per-item probabilities. Runs
    // labeled as few-shot folds keep binomial-scale jitter so Table 6's
    // fold variance is realistic.
    let mut draw_rng = root.fork(&format!(
        "stratified-draw/{system}/{model}/{}",
        budget.size()
    ));
    let expected: f64 = probs.iter().sum();
    let jitter = if matches!(budget, Budget::FewShot(_)) {
        let var: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
        draw_rng.normal_with(0.0, var.sqrt() * 0.8)
    } else {
        0.0
    };
    let count = ((expected + jitter).round().max(0.0) as usize).min(probs.len());
    let successes = weighted_success_set(&probs, count, &mut draw_rng);
    CellState { root, successes }
}

/// One item of one cell. The item RNG is forked from the cell's root by
/// label (never drawn from a shared stream), so this function is a pure
/// unit: any worker may run it, in any order, with identical output.
fn run_one_item(
    setup: &EvalSetup,
    ctx: &SystemContext,
    system: SystemKind,
    state: &CellState,
    governor: &Governor,
    i: usize,
) -> ItemResult {
    let (model, budget) = (ctx.model, ctx.budget);
    let profiles = setup.profiles(model);
    let cache = setup.query_cache(model);
    let item = &setup.benchmark.test[i];
    let mut rng = state
        .root
        .fork(&format!("{system}/{model}/{}/{i}", budget.size()));
    let p = if state.successes[i] { 1.0 } else { 0.0 };
    let g = predict_governed(
        system,
        item,
        ctx,
        p,
        &mut rng,
        governor.fault_plan.as_ref(),
        &governor.retry,
    );
    // A trace collector scoped to this item: spans from the gold and
    // predicted executions land here and nowhere else, regardless of
    // which pool thread runs the closure.
    let trace_guard = sqlengine::TraceGuard::install();
    let (outcome, mut failure) = execution_match_governed(
        ctx.db,
        cache,
        &governor.budget,
        item.sql(model),
        g.prediction.sql.as_deref(),
    );
    let trace = ItemTrace::from_span(&trace_guard.finish());
    if g.gave_up {
        // The provider exhausted its retries; the missing SQL is a
        // provider failure, not a benign "no prediction".
        failure = Some(FailureKind::ProviderError);
    }
    ItemResult {
        item_id: item.id,
        outcome,
        failure,
        predicted_sql: g.prediction.sql.clone(),
        latency: g.prediction.latency,
        shots_used: g.prediction.shots_used,
        hardness: profiles[i].hardness,
        stats: profiles[i].stats,
        trace,
        fault: g.fault,
        retries: g.retries,
        gave_up: g.gave_up,
    }
}

/// The degraded record for an item whose worker panicked.
fn panicked_item(setup: &EvalSetup, model: DataModel, i: usize) -> ItemResult {
    let profiles = setup.profiles(model);
    ItemResult {
        item_id: setup.benchmark.test[i].id,
        outcome: ExOutcome::ExecError,
        failure: Some(FailureKind::Panic),
        predicted_sql: None,
        latency: 0.0,
        shots_used: 0,
        hardness: profiles[i].hardness,
        stats: profiles[i].stats,
        trace: ItemTrace::default(),
        fault: None,
        retries: 0,
        gave_up: false,
    }
}

/// Runs prepared cells over the test set at `(cell, item)` granularity:
/// ALL pairs across ALL cells share one flat fan-out.
///
/// This is the grid schedulers' straggler fix. A per-cell fan-out keeps
/// a worker pinned to its slowest cell while siblings drain (cells are
/// very uneven — fuel varies ~20× across configurations), capping the
/// 8-thread speedup; flattening lets idle workers steal items from the
/// straggler cell. Results are reassembled per cell by index, so the
/// output is bit-identical to the nested schedule.
///
/// Panic isolation wraps each pair: a poisoned item degrades to a
/// classified [`FailureKind::Panic`] record — identically at any thread
/// count — instead of aborting the sweep.
pub fn run_prepared(setup: &EvalSetup, cells: &[PreparedConfig]) -> Vec<RunResult> {
    // Scoring under a different dialect than the one the profiles were
    // computed under would silently mix two backends' semantics in one
    // accuracy number; fail loudly instead.
    assert_eq!(
        current_dialect(),
        setup.dialect,
        "EvalSetup was profiled under the {} dialect but the process is scoring under {}; \
         pin the same dialect (REPRO_DIALECT or sqlengine::set_dialect) for both",
        setup.dialect,
        current_dialect(),
    );
    // Per-cell prepare: the success draws (cheap, serial) and the
    // retrieval indexes (embedding the pools — parallel; the indexes
    // borrow the pools, which is why preparation is a distinct pass).
    let states: Vec<CellState> = cells.iter().map(|c| cell_state(setup, c)).collect();
    let pools: Vec<&[GoldExample]> = cells.iter().map(|c| c.pool.as_slice()).collect();
    let indexes: Vec<RetrievalIndex> = par_map(&pools, |p| RetrievalIndex::build(p));

    let n_items = setup.benchmark.test.len();
    let pairs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..n_items).map(move |i| (c, i)))
        .collect();
    let caught = par_map_catch(&pairs, |&(c, i)| {
        let cfg = &cells[c];
        let ctx = SystemContext {
            model: cfg.model,
            db: setup.db(cfg.model),
            graph: setup.graph(cfg.model),
            index: Some(&indexes[c]),
            budget: cfg.budget,
        };
        run_one_item(setup, &ctx, cfg.system, &states[c], &cfg.governor, i)
    });

    let mut slots = caught.into_iter();
    cells
        .iter()
        .map(|cfg| RunResult {
            system: cfg.system,
            model: cfg.model,
            budget: cfg.budget,
            items: (0..n_items)
                .map(|i| {
                    slots
                        .next()
                        .expect("one slot per pair")
                        .unwrap_or_else(|_| panicked_item(setup, cfg.model, i))
                })
                .collect(),
        })
        .collect()
}

/// [`run_config`] under a [`Governor`]: predictions pass through the
/// fault plan (with deterministic retry for transient faults), predicted
/// SQL executes under the fuel budget, and each worker is panic-isolated
/// — a poisoned item degrades to a [`FailureKind::Panic`] record instead
/// of aborting the sweep. Per-item outcomes are bit-identical at any
/// `REPRO_THREADS` under the same fault seed.
#[allow(clippy::too_many_arguments)]
pub fn run_config_governed(
    setup: &EvalSetup,
    system: SystemKind,
    model: DataModel,
    budget: Budget,
    train_pool: &[GoldExample],
    run_label: &str,
    governor: &Governor,
) -> RunResult {
    let cfg = PreparedConfig {
        system,
        model,
        budget,
        pool: train_pool.to_vec(),
        run_label: run_label.to_string(),
        governor: *governor,
    };
    run_prepared(setup, std::slice::from_ref(&cfg))
        .pop()
        .expect("one cell in, one run out")
}

/// Draws `count` success flags without replacement, weighted by the
/// per-item probabilities.
pub(crate) fn weighted_success_set(probs: &[f64], count: usize, rng: &mut Rng) -> Vec<bool> {
    let mut flags = vec![false; probs.len()];
    let mut remaining: Vec<usize> = (0..probs.len()).filter(|&i| probs[i] > 0.0).collect();
    // The weight list shadows `remaining` and is updated with the same
    // swap_remove, avoiding an O(n) rebuild (and allocation) per draw.
    let mut weights: Vec<f64> = remaining.iter().map(|&i| probs[i]).collect();
    for _ in 0..count.min(remaining.len()) {
        let pick = rng.choose_weighted(&weights);
        flags[remaining[pick]] = true;
        remaining.swap_remove(pick);
        weights.swap_remove(pick);
    }
    flags
}

/// Table 5: fine-tuned systems × data models × train sizes.
///
/// The grid cells are independent configurations; the whole grid runs
/// as one flat `(cell, item)` fan-out (see [`run_prepared`]) and comes
/// back in grid order.
pub fn run_finetuned_grid(setup: &EvalSetup, train_sizes: &[usize]) -> Vec<RunResult> {
    let systems = [
        SystemKind::ValueNet,
        SystemKind::T5Picard,
        SystemKind::T5PicardKeys,
    ];
    let mut cells = Vec::new();
    for model in DataModel::ALL {
        for &n in train_sizes {
            for system in systems {
                cells.push(PreparedConfig {
                    system,
                    model,
                    budget: Budget::FineTuned(n),
                    pool: setup.benchmark.train.iter().take(n).cloned().collect(),
                    run_label: "table5".to_string(),
                    governor: Governor::default(),
                });
            }
        }
    }
    run_prepared(setup, &cells)
}

/// A few-shot experiment's per-fold accuracies.
#[derive(Debug, Clone)]
pub struct FoldedResult {
    pub system: SystemKind,
    pub model: DataModel,
    pub shots: usize,
    pub fold_accuracies: Vec<f64>,
    /// The last fold's run (for breakdowns and latency sampling).
    pub last_run: RunResult,
}

impl FoldedResult {
    pub fn mean(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len().max(1) as f64
    }

    pub fn sd(&self) -> f64 {
        let m = self.mean();
        let n = self.fold_accuracies.len().max(1) as f64;
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - m).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

/// Table 6: LLMs × data models × shot counts, over random-sample folds
/// (the paper draws 3 folds for GPT-3.5 and "multiple folds" for
/// LLaMA2; we use 3 and 4).
pub fn run_fewshot_grid(setup: &EvalSetup) -> Vec<FoldedResult> {
    let specs: [(SystemKind, &[usize], usize); 2] = [
        (SystemKind::Gpt35, &[0, 10, 20, 30], 3),
        (SystemKind::Llama2, &[0, 2, 4, 8], 4),
    ];
    // Every fold of every (model, system, shots) cell is its own
    // prepared cell, so the whole table fans out at item granularity —
    // folds no longer serialize inside a straggler cell. The fold RNG
    // labels are unchanged, so fold pools (and results) are identical
    // to the nested schedule.
    let mut cells = Vec::new();
    let mut configs = Vec::new();
    for model in DataModel::ALL {
        for (system, shot_list, folds) in specs {
            for &shots in shot_list {
                cells.push((model, system, shots, folds));
                for fold in 0..folds {
                    // Random shot sample per fold, as in the paper.
                    let mut rng =
                        Rng::new(setup.seed).fork(&format!("fold/{system}/{model}/{shots}/{fold}"));
                    let idx = rng.sample_indices(setup.benchmark.train.len(), shots.max(1));
                    let pool: Vec<GoldExample> = if shots == 0 {
                        Vec::new()
                    } else {
                        idx.iter()
                            .map(|&i| setup.benchmark.train[i].clone())
                            .collect()
                    };
                    configs.push(PreparedConfig {
                        system,
                        model,
                        budget: Budget::FewShot(shots),
                        pool,
                        run_label: format!("table6/f{fold}"),
                        governor: Governor::default(),
                    });
                }
            }
        }
    }
    let mut runs = run_prepared(setup, &configs).into_iter();
    cells
        .into_iter()
        .map(|(model, system, shots, folds)| {
            let fold_runs: Vec<RunResult> = (0..folds)
                .map(|_| runs.next().expect("one run per fold"))
                .collect();
            FoldedResult {
                system,
                model,
                shots,
                fold_accuracies: fold_runs.iter().map(RunResult::accuracy).collect(),
                last_run: fold_runs.into_iter().next_back().unwrap(),
            }
        })
        .collect()
}

/// Table 7: latency statistics per system at its maximum budget.
///
/// Measured over the v1 corpus, whose query lengths match the workload
/// the paper timed (v3's shorter queries would understate the decode
/// cost).
pub fn run_latency(setup: &EvalSetup) -> Vec<(SystemKind, f64, f64)> {
    let model = DataModel::V1;
    let cells: Vec<PreparedConfig> = SystemKind::ALL
        .iter()
        .map(|&system| {
            let budget = if system.fine_tuned() {
                Budget::FineTuned(300)
            } else if system == SystemKind::Llama2 {
                Budget::FewShot(8)
            } else {
                Budget::FewShot(30)
            };
            PreparedConfig {
                system,
                model,
                budget,
                pool: setup.benchmark.train.clone(),
                run_label: "table7".to_string(),
                governor: Governor::default(),
            }
        })
        .collect();
    run_prepared(setup, &cells)
        .into_iter()
        .map(|run| {
            let (m, sd) = textosql::mean_sd(&run.latencies());
            (run.system, m, sd)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn setup() -> &'static EvalSetup {
        static SETUP: OnceLock<EvalSetup> = OnceLock::new();
        SETUP.get_or_init(|| EvalSetup::small(11))
    }

    #[test]
    fn run_config_scores_all_items() {
        let s = setup();
        let run = run_config(
            s,
            SystemKind::Gpt35,
            DataModel::V3,
            Budget::FewShot(10),
            &s.benchmark.train[..20.min(s.benchmark.train.len())],
            "test",
        );
        assert_eq!(run.items.len(), s.benchmark.test.len());
        let acc = run.accuracy();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn run_config_is_deterministic() {
        let s = setup();
        let pool = &s.benchmark.train[..10];
        let a = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V1,
            Budget::FineTuned(100),
            pool,
            "d",
        );
        let b = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V1,
            Budget::FineTuned(100),
            pool,
            "d",
        );
        assert_eq!(a.accuracy(), b.accuracy());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn more_training_data_helps_fine_tuned_systems() {
        let s = setup();
        let small_pool = &s.benchmark.train[..5.min(s.benchmark.train.len())];
        let zero = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V3,
            Budget::FineTuned(0),
            small_pool,
            "grow",
        );
        let full = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V3,
            Budget::FineTuned(300),
            &s.benchmark.train,
            "grow",
        );
        assert!(
            full.accuracy() > zero.accuracy(),
            "{} vs {}",
            full.accuracy(),
            zero.accuracy()
        );
    }

    #[test]
    fn folded_result_statistics() {
        let s = setup();
        let run = run_config(
            s,
            SystemKind::Gpt35,
            DataModel::V2,
            Budget::FewShot(10),
            &s.benchmark.train[..10],
            "stat",
        );
        let folded = FoldedResult {
            system: SystemKind::Gpt35,
            model: DataModel::V2,
            shots: 10,
            fold_accuracies: vec![0.3, 0.4, 0.5],
            last_run: run,
        };
        assert!((folded.mean() - 0.4).abs() < 1e-12);
        assert!(folded.sd() > 0.0);
    }

    #[test]
    fn latency_run_orders_systems() {
        let s = setup();
        let lat = run_latency(s);
        let get = |k: SystemKind| lat.iter().find(|(s, _, _)| *s == k).unwrap().1;
        assert!(get(SystemKind::ValueNet) < 3.0);
        assert!(get(SystemKind::T5Picard) > get(SystemKind::T5PicardKeys));
        assert!(get(SystemKind::T5PicardKeys) > get(SystemKind::Llama2));
    }
}
