//! The experiment harness.
//!
//! Owns the full evaluation state (domain, three database instances,
//! join graphs, gold benchmark) and runs the paper's experiment grid:
//! fine-tuned systems over train-set sizes (Table 5), LLMs over few-shot
//! folds (Table 6), and the latency measurements (Table 7).

use crate::metric::{accuracy, execution_match_governed, ExOutcome, FailureKind};
use crate::metrics::ItemTrace;
use crate::parallel::{par_map, par_map_catch};
use footballdb::{generate, load, DataModel, Domain};
use nlq::gold::{build_benchmark, PipelineConfig};
use nlq::{Benchmark, GoldExample};
use sqlengine::{CacheStats, Database, ExecBudget, QueryCache};
use sqlkit::{Hardness, QueryStats};
use textosql::{
    predict_governed, profile_items_with_db, success_probabilities, Budget, FaultKind, FaultPlan,
    ItemProfile, JoinGraph, RetrievalIndex, RetryPolicy, SystemContext, SystemKind,
};
use xrng::Rng;

/// Everything needed to run experiments.
pub struct EvalSetup {
    pub domain: Domain,
    pub databases: Vec<(DataModel, Database)>,
    pub graphs: Vec<(DataModel, JoinGraph)>,
    pub benchmark: Benchmark,
    pub seed: u64,
    /// Memoized test-set difficulty profiles per data model (profiling
    /// executes the gold queries, so it is computed once).
    profiles: Vec<(DataModel, Vec<ItemProfile>)>,
    /// Query-result memo tables, one per data model database. Gold SQL
    /// is shared by every configuration of a model and repeated
    /// predictions are common, so each distinct query executes once.
    caches: Vec<(DataModel, QueryCache)>,
}

impl EvalSetup {
    /// Full-size setup matching the paper (400 selected, 300/100 split).
    pub fn paper_scale(seed: u64) -> EvalSetup {
        EvalSetup::with_config(seed, &PipelineConfig::default())
    }

    /// A reduced setup for fast tests.
    pub fn small(seed: u64) -> EvalSetup {
        EvalSetup::with_config(
            seed,
            &PipelineConfig {
                raw_questions: 700,
                pool_size: 260,
                selected_size: 120,
                test_size: 40,
                clusters: 13,
                ..PipelineConfig::default()
            },
        )
    }

    pub fn with_config(seed: u64, cfg: &PipelineConfig) -> EvalSetup {
        let domain = generate(footballdb::DEFAULT_SEED);
        // The three database loads are independent; fan them out.
        let databases: Vec<(DataModel, Database)> =
            par_map(&DataModel::ALL, |&m| (m, load(&domain, m)));
        let graphs = DataModel::ALL
            .iter()
            .map(|m| (*m, JoinGraph::from_catalog(&m.catalog())))
            .collect();
        let benchmark = build_benchmark(&domain, seed, cfg);
        let mut setup = EvalSetup {
            domain,
            databases,
            graphs,
            benchmark,
            seed,
            profiles: Vec::new(),
            caches: DataModel::ALL
                .iter()
                .map(|&m| (m, QueryCache::new()))
                .collect(),
        };
        // Profiling executes every gold test query against each model's
        // database — the expensive part of setup, also independent.
        setup.profiles = par_map(&DataModel::ALL, |&m| {
            (
                m,
                profile_items_with_db(&setup.benchmark.test, m, setup.graph(m), Some(setup.db(m))),
            )
        });
        setup
    }

    pub fn db(&self, model: DataModel) -> &Database {
        &self.databases.iter().find(|(m, _)| *m == model).unwrap().1
    }

    pub fn graph(&self, model: DataModel) -> &JoinGraph {
        &self.graphs.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// Memoized test-set profiles for one data model.
    pub fn profiles(&self, model: DataModel) -> &[ItemProfile] {
        &self.profiles.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// The query-result memo table for one data model's database.
    pub fn query_cache(&self, model: DataModel) -> &QueryCache {
        &self.caches.iter().find(|(m, _)| *m == model).unwrap().1
    }

    /// Aggregated hit/miss counters over all three model caches.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
            oversize: 0,
            builds: 0,
        };
        for (_, cache) in &self.caches {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
            total.oversize += s.oversize;
            total.builds += s.builds;
        }
        total
    }

    /// Aggregated index build/probe counters over all three model
    /// databases (the engine builds hash indexes lazily on first use).
    pub fn index_stats(&self) -> sqlengine::IndexStats {
        let mut total = sqlengine::IndexStats::default();
        for (_, db) in &self.databases {
            let s = db.index_stats();
            total.builds += s.builds;
            total.probes += s.probes;
            total.hits += s.hits;
        }
        total
    }

    /// Drops every memoized result and zeroes the counters (used by the
    /// benchmark harness to measure cold-cache baselines).
    pub fn clear_query_caches(&self) {
        for (_, cache) in &self.caches {
            cache.clear();
        }
    }

    /// Enables or disables memoization on all three caches.
    pub fn set_query_caches_enabled(&self, enabled: bool) {
        for (_, cache) in &self.caches {
            cache.set_enabled(enabled);
        }
    }
}

/// Per-item evaluation record.
#[derive(Debug, Clone)]
pub struct ItemResult {
    pub item_id: usize,
    pub outcome: ExOutcome,
    /// The classified failure when `outcome` is not correct (graceful
    /// degradation); `None` for correct items.
    pub failure: Option<FailureKind>,
    pub latency: f64,
    pub shots_used: usize,
    pub hardness: Hardness,
    pub stats: QueryStats,
    /// Per-stage trace summary of this item's execution-match step
    /// (scoped per item via a thread-local collector, so concurrent
    /// items never cross-contaminate).
    pub trace: ItemTrace,
    /// The injected fault the provider surfaced for this item, if any.
    pub fault: Option<FaultKind>,
    /// Retries spent recovering from transient faults.
    pub retries: u32,
    /// Whether the provider exhausted every retry.
    pub gave_up: bool,
}

/// One configuration's run over the test set.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub system: SystemKind,
    pub model: DataModel,
    pub budget: Budget,
    pub items: Vec<ItemResult>,
}

impl RunResult {
    pub fn accuracy(&self) -> f64 {
        accuracy(&self.items.iter().map(|i| i.outcome).collect::<Vec<_>>())
    }

    pub fn latencies(&self) -> Vec<f64> {
        self.items.iter().map(|i| i.latency).collect()
    }

    /// Failure counts over every taxonomy entry, in [`FailureKind::ALL`]
    /// order (zero-count kinds included, so rows line up across runs).
    pub fn failure_counts(&self) -> Vec<(FailureKind, usize)> {
        FailureKind::ALL
            .iter()
            .map(|&k| {
                let n = self.items.iter().filter(|i| i.failure == Some(k)).count();
                (k, n)
            })
            .collect()
    }
}

/// Robustness governance for one run: what faults to inject, how to
/// retry transient ones, and how much fuel each predicted query may
/// burn. The default governor injects nothing and applies the default
/// engine budget, making [`run_config`] a governed run with a no-op
/// fault plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct Governor {
    pub fault_plan: Option<FaultPlan>,
    pub retry: RetryPolicy,
    pub budget: ExecBudget,
}

/// Runs one (system, data model, budget) configuration over the test
/// set. `train_pool` is the fine-tuning set or the few-shot pool.
/// Equivalent to [`run_config_governed`] with the default (no-fault)
/// governor.
pub fn run_config(
    setup: &EvalSetup,
    system: SystemKind,
    model: DataModel,
    budget: Budget,
    train_pool: &[GoldExample],
    run_label: &str,
) -> RunResult {
    run_config_governed(
        setup,
        system,
        model,
        budget,
        train_pool,
        run_label,
        &Governor::default(),
    )
}

/// [`run_config`] under a [`Governor`]: predictions pass through the
/// fault plan (with deterministic retry for transient faults), predicted
/// SQL executes under the fuel budget, and each worker is panic-isolated
/// — a poisoned item degrades to a [`FailureKind::Panic`] record instead
/// of aborting the sweep. Per-item outcomes are bit-identical at any
/// `REPRO_THREADS` under the same fault seed.
#[allow(clippy::too_many_arguments)]
pub fn run_config_governed(
    setup: &EvalSetup,
    system: SystemKind,
    model: DataModel,
    budget: Budget,
    train_pool: &[GoldExample],
    run_label: &str,
    governor: &Governor,
) -> RunResult {
    let db = setup.db(model);
    let graph = setup.graph(model);
    let index = RetrievalIndex::build(train_pool);
    let ctx = SystemContext {
        model,
        db,
        graph,
        index: Some(&index),
        budget,
    };
    let profiles = setup.profiles(model);
    let probs = success_probabilities(system, model, budget, profiles);
    let root = Rng::new(setup.seed ^ 0x5eed).fork(run_label);

    // Stratified success draw: instead of independent Bernoulli draws
    // (whose binomial noise would swamp a 100-item test set), select a
    // success *set* whose size matches the expected total, sampling
    // without replacement weighted by the per-item probabilities. Runs
    // labeled as few-shot folds keep binomial-scale jitter so Table 6's
    // fold variance is realistic.
    let mut draw_rng = root.fork(&format!(
        "stratified-draw/{system}/{model}/{}",
        budget.size()
    ));
    let expected: f64 = probs.iter().sum();
    let jitter = if matches!(budget, Budget::FewShot(_)) {
        let var: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
        draw_rng.normal_with(0.0, var.sqrt() * 0.8)
    } else {
        0.0
    };
    let count = ((expected + jitter).round().max(0.0) as usize).min(probs.len());
    let successes = weighted_success_set(&probs, count, &mut draw_rng);

    // Each item is an independent unit: its RNG is forked from `root` by
    // label (not drawn from a shared stream), so the fan-out below is
    // order-insensitive and `par_map`'s by-index collection reproduces
    // the serial output exactly.
    let cache = setup.query_cache(model);
    let indices: Vec<usize> = (0..setup.benchmark.test.len()).collect();
    // Panic isolation wraps the whole unit: an injected worker panic (or
    // a real one) lands in that item's slot as `Err` — identically at any
    // thread count — and degrades below to a classified Panic record.
    let caught = par_map_catch(&indices, |&i| {
        let item = &setup.benchmark.test[i];
        let mut rng = root.fork(&format!("{system}/{model}/{}/{i}", budget.size()));
        let p = if successes[i] { 1.0 } else { 0.0 };
        let g = predict_governed(
            system,
            item,
            &ctx,
            p,
            &mut rng,
            governor.fault_plan.as_ref(),
            &governor.retry,
        );
        // A trace collector scoped to this item: spans from the gold and
        // predicted executions land here and nowhere else, regardless of
        // which pool thread runs the closure.
        let trace_guard = sqlengine::TraceGuard::install();
        let (outcome, mut failure) = execution_match_governed(
            db,
            cache,
            &governor.budget,
            item.sql(model),
            g.prediction.sql.as_deref(),
        );
        let trace = ItemTrace::from_span(&trace_guard.finish());
        if g.gave_up {
            // The provider exhausted its retries; the missing SQL is a
            // provider failure, not a benign "no prediction".
            failure = Some(FailureKind::ProviderError);
        }
        ItemResult {
            item_id: item.id,
            outcome,
            failure,
            latency: g.prediction.latency,
            shots_used: g.prediction.shots_used,
            hardness: profiles[i].hardness,
            stats: profiles[i].stats,
            trace,
            fault: g.fault,
            retries: g.retries,
            gave_up: g.gave_up,
        }
    });
    let items = caught
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|_| ItemResult {
                item_id: setup.benchmark.test[i].id,
                outcome: ExOutcome::ExecError,
                failure: Some(FailureKind::Panic),
                latency: 0.0,
                shots_used: 0,
                hardness: profiles[i].hardness,
                stats: profiles[i].stats,
                trace: ItemTrace::default(),
                fault: None,
                retries: 0,
                gave_up: false,
            })
        })
        .collect();

    RunResult {
        system,
        model,
        budget,
        items,
    }
}

/// Draws `count` success flags without replacement, weighted by the
/// per-item probabilities.
fn weighted_success_set(probs: &[f64], count: usize, rng: &mut Rng) -> Vec<bool> {
    let mut flags = vec![false; probs.len()];
    let mut remaining: Vec<usize> = (0..probs.len()).filter(|&i| probs[i] > 0.0).collect();
    // The weight list shadows `remaining` and is updated with the same
    // swap_remove, avoiding an O(n) rebuild (and allocation) per draw.
    let mut weights: Vec<f64> = remaining.iter().map(|&i| probs[i]).collect();
    for _ in 0..count.min(remaining.len()) {
        let pick = rng.choose_weighted(&weights);
        flags[remaining[pick]] = true;
        remaining.swap_remove(pick);
        weights.swap_remove(pick);
    }
    flags
}

/// Table 5: fine-tuned systems × data models × train sizes.
///
/// The grid cells are independent configurations; they fan out on the
/// worker pool and come back in grid order.
pub fn run_finetuned_grid(setup: &EvalSetup, train_sizes: &[usize]) -> Vec<RunResult> {
    let systems = [
        SystemKind::ValueNet,
        SystemKind::T5Picard,
        SystemKind::T5PicardKeys,
    ];
    let mut cells = Vec::new();
    for model in DataModel::ALL {
        for &n in train_sizes {
            for system in systems {
                cells.push((model, n, system));
            }
        }
    }
    par_map(&cells, |&(model, n, system)| {
        let pool: Vec<GoldExample> = setup.benchmark.train.iter().take(n).cloned().collect();
        run_config(setup, system, model, Budget::FineTuned(n), &pool, "table5")
    })
}

/// A few-shot experiment's per-fold accuracies.
#[derive(Debug, Clone)]
pub struct FoldedResult {
    pub system: SystemKind,
    pub model: DataModel,
    pub shots: usize,
    pub fold_accuracies: Vec<f64>,
    /// The last fold's run (for breakdowns and latency sampling).
    pub last_run: RunResult,
}

impl FoldedResult {
    pub fn mean(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len().max(1) as f64
    }

    pub fn sd(&self) -> f64 {
        let m = self.mean();
        let n = self.fold_accuracies.len().max(1) as f64;
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - m).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

/// Table 6: LLMs × data models × shot counts, over random-sample folds
/// (the paper draws 3 folds for GPT-3.5 and "multiple folds" for
/// LLaMA2; we use 3 and 4).
pub fn run_fewshot_grid(setup: &EvalSetup) -> Vec<FoldedResult> {
    let specs: [(SystemKind, &[usize], usize); 2] = [
        (SystemKind::Gpt35, &[0, 10, 20, 30], 3),
        (SystemKind::Llama2, &[0, 2, 4, 8], 4),
    ];
    // One fan-out unit per (model, system, shots) cell; the folds inside
    // a cell stay serial since each is already seeded by fold label.
    let mut cells = Vec::new();
    for model in DataModel::ALL {
        for (system, shot_list, folds) in specs {
            for &shots in shot_list {
                cells.push((model, system, shots, folds));
            }
        }
    }
    par_map(&cells, |&(model, system, shots, folds)| {
        let mut fold_accuracies = Vec::new();
        let mut last_run = None;
        for fold in 0..folds {
            // Random shot sample per fold, as in the paper.
            let mut rng =
                Rng::new(setup.seed).fork(&format!("fold/{system}/{model}/{shots}/{fold}"));
            let idx = rng.sample_indices(setup.benchmark.train.len(), shots.max(1));
            let pool: Vec<GoldExample> = if shots == 0 {
                Vec::new()
            } else {
                idx.iter()
                    .map(|&i| setup.benchmark.train[i].clone())
                    .collect()
            };
            let run = run_config(
                setup,
                system,
                model,
                Budget::FewShot(shots),
                &pool,
                &format!("table6/f{fold}"),
            );
            fold_accuracies.push(run.accuracy());
            last_run = Some(run);
        }
        FoldedResult {
            system,
            model,
            shots,
            fold_accuracies,
            last_run: last_run.unwrap(),
        }
    })
}

/// Table 7: latency statistics per system at its maximum budget.
///
/// Measured over the v1 corpus, whose query lengths match the workload
/// the paper timed (v3's shorter queries would understate the decode
/// cost).
pub fn run_latency(setup: &EvalSetup) -> Vec<(SystemKind, f64, f64)> {
    let model = DataModel::V1;
    par_map(&SystemKind::ALL, |&system| {
        let budget = if system.fine_tuned() {
            Budget::FineTuned(300)
        } else if system == SystemKind::Llama2 {
            Budget::FewShot(8)
        } else {
            Budget::FewShot(30)
        };
        let run = run_config(
            setup,
            system,
            model,
            budget,
            &setup.benchmark.train,
            "table7",
        );
        let (m, sd) = textosql::mean_sd(&run.latencies());
        (system, m, sd)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn setup() -> &'static EvalSetup {
        static SETUP: OnceLock<EvalSetup> = OnceLock::new();
        SETUP.get_or_init(|| EvalSetup::small(11))
    }

    #[test]
    fn run_config_scores_all_items() {
        let s = setup();
        let run = run_config(
            s,
            SystemKind::Gpt35,
            DataModel::V3,
            Budget::FewShot(10),
            &s.benchmark.train[..20.min(s.benchmark.train.len())],
            "test",
        );
        assert_eq!(run.items.len(), s.benchmark.test.len());
        let acc = run.accuracy();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn run_config_is_deterministic() {
        let s = setup();
        let pool = &s.benchmark.train[..10];
        let a = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V1,
            Budget::FineTuned(100),
            pool,
            "d",
        );
        let b = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V1,
            Budget::FineTuned(100),
            pool,
            "d",
        );
        assert_eq!(a.accuracy(), b.accuracy());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn more_training_data_helps_fine_tuned_systems() {
        let s = setup();
        let small_pool = &s.benchmark.train[..5.min(s.benchmark.train.len())];
        let zero = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V3,
            Budget::FineTuned(0),
            small_pool,
            "grow",
        );
        let full = run_config(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V3,
            Budget::FineTuned(300),
            &s.benchmark.train,
            "grow",
        );
        assert!(
            full.accuracy() > zero.accuracy(),
            "{} vs {}",
            full.accuracy(),
            zero.accuracy()
        );
    }

    #[test]
    fn folded_result_statistics() {
        let s = setup();
        let run = run_config(
            s,
            SystemKind::Gpt35,
            DataModel::V2,
            Budget::FewShot(10),
            &s.benchmark.train[..10],
            "stat",
        );
        let folded = FoldedResult {
            system: SystemKind::Gpt35,
            model: DataModel::V2,
            shots: 10,
            fold_accuracies: vec![0.3, 0.4, 0.5],
            last_run: run,
        };
        assert!((folded.mean() - 0.4).abs() < 1e-12);
        assert!(folded.sd() > 0.0);
    }

    #[test]
    fn latency_run_orders_systems() {
        let s = setup();
        let lat = run_latency(s);
        let get = |k: SystemKind| lat.iter().find(|(s, _, _)| *s == k).unwrap().1;
        assert!(get(SystemKind::ValueNet) < 3.0);
        assert!(get(SystemKind::T5Picard) > get(SystemKind::T5PicardKeys));
        assert!(get(SystemKind::T5PicardKeys) > get(SystemKind::Llama2));
    }
}
