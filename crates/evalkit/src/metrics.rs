//! Metrics registry: per-(system, model, hardness) aggregation of
//! per-item trace spans, failure taxonomy counts, and fault/retry
//! events.
//!
//! The registry is built *after* a run from its [`RunResult`]s, never
//! mutated concurrently: each worker records an [`ItemTrace`] summary
//! on its [`crate::experiment::ItemResult`] (collected by index, see
//! [`crate::parallel`]), and aggregation here is commutative integer
//! addition over those per-item summaries. That is what makes every
//! counter in the registry bit-identical across `REPRO_THREADS` — no
//! lock ordering, no accumulation order, no shared mutable state.
//!
//! Determinism contract (mirrors `sqlengine::trace`): stage `calls` /
//! `rows_out` / `fuel_steps` / `fuel_cells`, item/correct counts,
//! failure counts, fault/retry counts, and latency histograms (the
//! latencies are simulated, hence seeded-deterministic) are exact
//! across thread counts. `cpu_ns`, index probe and cache hit/miss
//! totals are advisory: reported, but excluded from the deterministic
//! sections of `BENCH_profile.json`.

use crate::experiment::{ItemResult, RunResult};
use crate::metric::FailureKind;
use sqlengine::trace::TraceSpan;
use sqlkit::Hardness;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use textosql::FaultKind;

/// The executor's span stages, in rendering order. Mirrors the stage
/// names `sqlengine::exec` opens spans under.
pub const STAGES: [&str; 10] = [
    "parse",
    "query",
    "plan",
    "scan",
    "join",
    "filter",
    "aggregate",
    "sort",
    "project",
    "setop",
];

/// Aggregated counters for one stage over some set of spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Spans of this stage.
    pub calls: u64,
    /// Rows emitted, summed (deterministic).
    pub rows_out: u64,
    /// Budget steps charged, summed (deterministic).
    pub fuel_steps: u64,
    /// Budget cells charged, summed (deterministic).
    pub fuel_cells: u64,
    /// Column-vector batches emitted, summed (advisory: zero whenever
    /// the row engine ran, so excluded from the deterministic JSON).
    pub batches_out: u64,
    /// Thread-CPU nanoseconds, summed (never deterministic).
    pub cpu_ns: u64,
}

impl StageAgg {
    fn add(&mut self, other: &StageAgg) {
        self.calls += other.calls;
        self.rows_out += other.rows_out;
        self.fuel_steps += other.fuel_steps;
        self.fuel_cells += other.fuel_cells;
        self.batches_out += other.batches_out;
        self.cpu_ns += other.cpu_ns;
    }
}

/// Flat per-item summary of one trace span tree: per-stage aggregates
/// plus the access-path counters. Small and `Copy`, so it rides on
/// [`ItemResult`] through the by-index parallel collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItemTrace {
    /// One slot per [`STAGES`] entry, same order.
    pub stages: [StageAgg; STAGES.len()],
    /// Index probes issued (access-path; mode-dependent).
    pub index_probes: u64,
    /// Index probes that found a posting list.
    pub index_hits: u64,
    /// Query-cache hits (advisory: scheduling-dependent split).
    pub cache_hits: u64,
    /// Query-cache misses (advisory).
    pub cache_misses: u64,
}

impl ItemTrace {
    /// Buckets every span in `root`'s tree by stage. Spans with stages
    /// outside [`STAGES`] (the synthetic `root`) contribute only their
    /// access-path counters.
    pub fn from_span(root: &TraceSpan) -> ItemTrace {
        let mut out = ItemTrace::default();
        root.visit(&mut |s, _| {
            if let Some(slot) = STAGES.iter().position(|&n| n == s.stage) {
                let agg = &mut out.stages[slot];
                agg.calls += 1;
                agg.rows_out += s.counters.rows_out;
                agg.fuel_steps += s.counters.fuel_steps;
                agg.fuel_cells += s.counters.fuel_cells;
                agg.batches_out += s.counters.batches_out;
                agg.cpu_ns += s.cpu_ns;
            }
            out.index_probes += s.counters.index_probes;
            out.index_hits += s.counters.index_hits;
            out.cache_hits += s.counters.cache_hits;
            out.cache_misses += s.counters.cache_misses;
        });
        out
    }

    pub fn merge(&mut self, other: &ItemTrace) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.add(b);
        }
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// The aggregate for one stage by name (zero for unknown names).
    pub fn stage(&self, name: &str) -> StageAgg {
        STAGES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.stages[i])
            .unwrap_or_default()
    }
}

/// Fixed log-scale latency histogram: bucket `i` counts latencies in
/// `[2^(i-6), 2^(i-5))` seconds, with the extremes clamped into the
/// first and last bucket. Bucket population is a pure function of the
/// (seeded, simulated) latencies, so the counts are deterministic even
/// though the values are floats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    pub buckets: [u64; 16],
}

impl LatencyHistogram {
    pub fn record(&mut self, seconds: f64) {
        let idx = if seconds <= 0.0 {
            0
        } else {
            (seconds.log2().floor() as i64 + 6).clamp(0, 15) as usize
        };
        self.buckets[idx] += 1;
    }

    /// Folds another histogram into this one. Bucket addition commutes,
    /// so per-shard (or per-worker) histograms merged in any order equal
    /// the histogram a single sequential recorder would have produced —
    /// which is what lets the serving layer keep one histogram per
    /// worker and still report deterministic totals.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Lower bound (seconds) of bucket `i`.
    pub fn lower_bound(i: usize) -> f64 {
        2f64.powi(i as i32 - 6)
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0 < q <= 1`) as the lower bound of the bucket
    /// holding the `ceil(q * total)`-th sample — i.e. the resolution is
    /// the bucket width, and the reported value is a floor of the true
    /// quantile. Deterministic (pure integer bucket walk); `0.0` on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::lower_bound(i);
            }
        }
        Self::lower_bound(self.buckets.len() - 1)
    }

    /// Median latency (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency — the serving layer's tail headline.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// One (system, model, hardness) cell of the registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsCell {
    pub items: u64,
    pub correct: u64,
    /// Counts per [`FailureKind::ALL`] entry, same order.
    pub failures: [u64; 8],
    /// Injected-fault counts per [`FaultKind::ALL`] entry, same order.
    pub faults: [u64; 5],
    /// Total retries spent recovering from transient faults.
    pub retries: u64,
    /// Items whose provider exhausted every retry.
    pub gave_up: u64,
    pub latency: LatencyHistogram,
    pub trace: ItemTrace,
}

impl MetricsCell {
    fn record(&mut self, item: &ItemResult) {
        self.items += 1;
        if item.outcome == crate::metric::ExOutcome::Correct {
            self.correct += 1;
        }
        if let Some(f) = item.failure {
            let i = FailureKind::ALL.iter().position(|&k| k == f).unwrap();
            self.failures[i] += 1;
        }
        if let Some(f) = item.fault {
            let i = FaultKind::ALL.iter().position(|&k| k == f).unwrap();
            self.faults[i] += 1;
        }
        self.retries += item.retries as u64;
        self.gave_up += item.gave_up as u64;
        self.latency.record(item.latency);
        self.trace.merge(&item.trace);
    }

    fn merge(&mut self, other: &MetricsCell) {
        self.items += other.items;
        self.correct += other.correct;
        for (a, b) in self.failures.iter_mut().zip(&other.failures) {
            *a += b;
        }
        for (a, b) in self.faults.iter_mut().zip(&other.faults) {
            *a += b;
        }
        self.retries += other.retries;
        self.gave_up += other.gave_up;
        self.latency.merge(&other.latency);
        self.trace.merge(&other.trace);
    }
}

/// Aggregates per-item spans and events into per-(system, model,
/// hardness) cells. Keys are the `Display` names, held in a `BTreeMap`
/// so every iteration (rendering, JSON) is in one deterministic order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    cells: BTreeMap<(String, String, String), MetricsCell>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn from_runs<'a>(runs: impl IntoIterator<Item = &'a RunResult>) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for run in runs {
            reg.record_run(run);
        }
        reg
    }

    pub fn record_run(&mut self, run: &RunResult) {
        for item in &run.items {
            let key = (
                run.system.to_string(),
                run.model.to_string(),
                hardness_name(item.hardness).to_string(),
            );
            self.cells.entry(key).or_default().record(item);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn cells(&self) -> impl Iterator<Item = (&(String, String, String), &MetricsCell)> {
        self.cells.iter()
    }

    /// Everything folded into one cell (grand totals).
    pub fn totals(&self) -> MetricsCell {
        let mut total = MetricsCell::default();
        for cell in self.cells.values() {
            total.merge(cell);
        }
        total
    }

    /// Text rendering: per-cell EX plus the dominant failure kinds, and
    /// a stage table over the grand totals.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "{:<14} {:<4} {:<7} {:>6} {:>8} {:>9} {:>8} {:>8}",
            "system", "dm", "hard", "items", "EX", "failures", "faults", "retries"
        );
        for ((system, model, hardness), c) in &self.cells {
            let ex = if c.items == 0 {
                0.0
            } else {
                c.correct as f64 / c.items as f64
            };
            let _ = writeln!(
                out,
                "{system:<14} {model:<4} {hardness:<7} {:>6} {:>7.2}% {:>9} {:>8} {:>8}",
                c.items,
                ex * 100.0,
                c.failures.iter().sum::<u64>(),
                c.faults.iter().sum::<u64>(),
                c.retries,
            );
        }
        let total = self.totals();
        let _ = writeln!(out, "\nstage totals (deterministic counters):");
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>12} {:>14} {:>16}",
            "stage", "calls", "rows_out", "fuel_steps", "fuel_cells"
        );
        for (i, name) in STAGES.iter().enumerate() {
            let s = total.trace.stages[i];
            if s.calls == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {name:<10} {:>8} {:>12} {:>14} {:>16}",
                s.calls, s.rows_out, s.fuel_steps, s.fuel_cells
            );
        }
        out
    }

    /// JSON object for the *deterministic* counters only: stage calls /
    /// rows / fuel, item and outcome counts, failure and fault counts,
    /// retries, and latency histogram buckets. Excludes wall-clock and
    /// the scheduling-dependent cache split — this is the section
    /// `BENCH_profile.json` requires to be bit-identical across
    /// `REPRO_THREADS=1` and `8`.
    pub fn deterministic_json(&self, indent: &str) -> String {
        let total = self.totals();
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "{indent}  \"items\": {},", total.items);
        let _ = writeln!(out, "{indent}  \"correct\": {},", total.correct);
        let _ = writeln!(out, "{indent}  \"retries\": {},", total.retries);
        let _ = writeln!(out, "{indent}  \"gave_up\": {},", total.gave_up);
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .enumerate()
            .map(|(i, k)| format!("\"{}\": {}", k.name(), total.failures[i]))
            .collect();
        let _ = writeln!(out, "{indent}  \"failures\": {{{}}},", failures.join(", "));
        let faults: Vec<String> = FaultKind::ALL
            .iter()
            .enumerate()
            .map(|(i, k)| format!("\"{}\": {}", k.name(), total.faults[i]))
            .collect();
        let _ = writeln!(out, "{indent}  \"faults\": {{{}}},", faults.join(", "));
        let buckets: Vec<String> = total.latency.buckets.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "{indent}  \"latency_hist\": [{}],", buckets.join(", "));
        out.push_str(&format!("{indent}  \"stages\": {{\n"));
        let mut first = true;
        for (i, name) in STAGES.iter().enumerate() {
            let s = total.trace.stages[i];
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{indent}    \"{name}\": {{\"calls\": {}, \"rows_out\": {}, \
                 \"fuel_steps\": {}, \"fuel_cells\": {}}}",
                s.calls, s.rows_out, s.fuel_steps, s.fuel_cells
            );
        }
        out.push('\n');
        let _ = writeln!(out, "{indent}  }},");
        out.push_str(&format!("{indent}  \"cells\": [\n"));
        let mut first = true;
        for ((system, model, hardness), c) in &self.cells {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{indent}    {{\"system\": \"{system}\", \"model\": \"{model}\", \
                 \"hardness\": \"{hardness}\", \"items\": {}, \"correct\": {}, \
                 \"fuel_steps\": {}, \"rows_out\": {}}}",
                c.items,
                c.correct,
                c.trace.stages.iter().map(|s| s.fuel_steps).sum::<u64>(),
                c.trace.stages.iter().map(|s| s.rows_out).sum::<u64>(),
            );
        }
        out.push('\n');
        let _ = writeln!(out, "{indent}  ]");
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// Stable lowercase hardness label.
pub fn hardness_name(h: Hardness) -> &'static str {
    match h {
        Hardness::Easy => "easy",
        Hardness::Medium => "medium",
        Hardness::Hard => "hard",
        Hardness::Extra => "extra",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::trace::TraceCounters;

    fn span(stage: &'static str, rows: u64, steps: u64) -> TraceSpan {
        TraceSpan {
            stage,
            label: String::new(),
            detail: String::new(),
            counters: TraceCounters {
                rows_out: rows,
                fuel_steps: steps,
                fuel_cells: steps * 2,
                index_probes: 1,
                index_hits: 1,
                cache_hits: 0,
                cache_misses: 0,
                batches_out: 0,
            },
            cpu_ns: 123,
            children: Vec::new(),
        }
    }

    #[test]
    fn item_trace_buckets_by_stage() {
        let mut root = span("root", 0, 0);
        root.children.push(span("scan", 10, 0));
        root.children.push(span("join", 4, 4));
        root.children[1].children.push(span("scan", 7, 0));
        let t = ItemTrace::from_span(&root);
        assert_eq!(t.stage("scan").calls, 2);
        assert_eq!(t.stage("scan").rows_out, 17);
        assert_eq!(t.stage("join").fuel_steps, 4);
        // Access-path counters include the synthetic root's.
        assert_eq!(t.index_probes, 4);
    }

    #[test]
    fn latency_histogram_is_stable_and_clamped() {
        let mut h = LatencyHistogram::default();
        h.record(0.0);
        h.record(1e-9);
        h.record(0.5);
        h.record(1.0);
        h.record(1e9);
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[5], 1); // [0.5, 1.0)
        assert_eq!(h.buckets[6], 1); // [1.0, 2.0)
        assert_eq!(h.buckets[15], 1);
        assert!((LatencyHistogram::lower_bound(6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_hit_bucket_edges_exactly() {
        // 100 samples: 50 in bucket 5 ([0.5, 1.0)), 49 in bucket 6
        // ([1.0, 2.0)), 1 in bucket 15. Ranks: p50 -> 50th sample
        // (last of bucket 5), p99 -> 99th (last of bucket 6), p999 ->
        // ceil(99.9) = 100th (the lone tail sample).
        let mut h = LatencyHistogram::default();
        h.buckets[5] = 50;
        h.buckets[6] = 49;
        h.buckets[15] = 1;
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50(), LatencyHistogram::lower_bound(5));
        assert_eq!(h.p99(), LatencyHistogram::lower_bound(6));
        assert_eq!(h.p999(), LatencyHistogram::lower_bound(15));
        // One more sample in bucket 6 tips the median over the edge:
        // rank ceil(0.5 * 101) = 51 now lands in bucket 6.
        h.buckets[6] += 1;
        assert_eq!(h.p50(), LatencyHistogram::lower_bound(6));
        // Degenerate cases: empty histogram, single sample, q = 1.0.
        assert_eq!(LatencyHistogram::default().quantile(0.5), 0.0);
        let mut one = LatencyHistogram::default();
        one.record(0.75);
        assert_eq!(one.quantile(0.001), LatencyHistogram::lower_bound(5));
        assert_eq!(one.quantile(1.0), LatencyHistogram::lower_bound(5));
        assert_eq!(h.quantile(1.0), LatencyHistogram::lower_bound(15));
    }

    #[test]
    fn merged_shard_histograms_equal_sequential_recording() {
        let latencies = [0.01, 0.2, 0.7, 1.5, 3.0, 10.0, 0.7, 64.0];
        let mut sequential = LatencyHistogram::default();
        for l in latencies {
            sequential.record(l);
        }
        // Deal the same samples round-robin over 3 "shards", merge in a
        // scrambled order: totals and every quantile must match.
        let mut shards = [LatencyHistogram::default(); 3];
        for (i, l) in latencies.iter().enumerate() {
            shards[i % 3].record(*l);
        }
        let mut merged = LatencyHistogram::default();
        for i in [2, 0, 1] {
            merged.merge(&shards[i]);
        }
        assert_eq!(merged, sequential);
        assert_eq!(merged.p999(), sequential.p999());
    }

    #[test]
    fn registry_keys_are_ordered_and_json_is_deterministic() {
        use crate::experiment::{ItemResult, RunResult};
        use crate::metric::{ExOutcome, FailureKind};
        use footballdb::DataModel;
        use sqlkit::QueryStats;
        use textosql::{Budget, SystemKind};

        let item = |h, correct: bool| ItemResult {
            item_id: 0,
            outcome: if correct {
                ExOutcome::Correct
            } else {
                ExOutcome::ExecError
            },
            failure: (!correct).then_some(FailureKind::ExecError),
            predicted_sql: None,
            latency: 1.5,
            shots_used: 0,
            hardness: h,
            stats: QueryStats::default(),
            trace: ItemTrace::default(),
            fault: Some(textosql::FaultKind::Transient),
            retries: 2,
            gave_up: false,
        };
        let run = RunResult {
            system: SystemKind::Gpt35,
            model: DataModel::V1,
            budget: Budget::FewShot(10),
            items: vec![item(Hardness::Easy, true), item(Hardness::Hard, false)],
        };
        let a = MetricsRegistry::from_runs([&run]);
        let b = MetricsRegistry::from_runs([&run]);
        assert_eq!(a.deterministic_json(""), b.deterministic_json(""));
        let total = a.totals();
        assert_eq!((total.items, total.correct, total.retries), (2, 1, 4));
        assert_eq!(total.faults[4], 2, "transient fault counted");
        let json = a.deterministic_json("");
        assert!(json.contains("\"exec_error\": 1"), "{json}");
        assert!(json.contains("\"transient\": 2"), "{json}");
        let rendered = a.render();
        assert!(rendered.contains("GPT-3.5"), "{rendered}");
    }
}
