//! `evalkit` — evaluation harness and report generation.
//!
//! Ties the workspace together: loads the FootballDB instances, builds
//! the gold benchmark, runs every system configuration of the paper's
//! evaluation (Section 6), and renders each table and figure:
//!
//! * [`metric`] — execution accuracy (EX / result matching);
//! * [`parallel`] — deterministic scoped-thread fan-out for the grid
//!   (`REPRO_THREADS=1` is the serial reference path);
//! * [`experiment`] — the experiment grid (Tables 5–7);
//! * [`metrics`] — registry aggregating per-item trace spans into
//!   per-(system, model, hardness) counters and histograms;
//! * [`breakdown`] — hardness and characteristic breakdowns (Figures
//!   7–8);
//! * [`forensics`] — clause-level diff classification and pipeline-stage
//!   attribution of every failed item (error fingerprints);
//! * [`report`] — text renderers for Tables 1–8 and both figures;
//! * [`ablation`] — keys-encoding, join-path, and extended-training
//!   ablations.
//!
//! # Example
//!
//! ```no_run
//! use evalkit::{EvalSetup, report};
//!
//! let setup = EvalSetup::paper_scale(7);
//! println!("{}", report::full_report(&setup));
//! ```

pub mod ablation;
pub mod breakdown;
pub mod experiment;
pub mod forensics;
pub mod metric;
pub mod metrics;
pub mod morph;
pub mod parallel;
pub mod report;
pub mod tradeoff;

pub use experiment::{
    run_config, run_config_governed, run_fewshot_grid, run_finetuned_grid, run_latency,
    run_prepared, EvalSetup, FoldedResult, Governor, ItemResult, PreparedConfig, RunResult,
};
pub use forensics::{
    classify_item, forensics_report, worst_items_report, wrong_result_total, FingerprintCell,
    ForensicsRegistry, ItemForensics,
};
pub use metric::{
    accuracy, classify_engine_error, component_match, execute_classified, execution_match,
    execution_match_cached, execution_match_governed, ComponentMatch, ExOutcome, FailureKind,
    QueryOutcome,
};
pub use morph::{
    canonical_budget, distance_table, run_morph_model, sweep_json, MorphModelSpec, MorphRun,
};

pub use metrics::{
    hardness_name, ItemTrace, LatencyHistogram, MetricsCell, MetricsRegistry, StageAgg, STAGES,
};
pub use parallel::{
    configured_threads, note_pool_width, observed_threads, par_map, par_map_catch,
    reset_observed_threads, set_thread_override,
};
