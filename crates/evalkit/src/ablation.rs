//! Ablations for the design choices DESIGN.md calls out.
//!
//! * **Keys ablation** — the T5-Picard vs T5-Picard_Keys gap per data
//!   model and train size (the paper's Section 6.2 verification that FK
//!   encoding unlocks data-model gains).
//! * **Join-path ablation** — how much of the gold corpus the SemQL
//!   pipeline can represent at all per data model (the mechanistic
//!   ceiling behind ValueNet's v1 behaviour).
//! * **Extended-training ablation** — ValueNet on the full ~900-example
//!   clean pool (the paper's 895-sample run reaching ≈29%).

use crate::experiment::{run_config, EvalSetup};
use footballdb::DataModel;
use textosql::{Budget, SystemKind};

/// Keys-encoding ablation result.
#[derive(Debug, Clone)]
pub struct KeysAblation {
    pub model: DataModel,
    pub train_size: usize,
    pub without_keys: f64,
    pub with_keys: f64,
}

impl KeysAblation {
    pub fn gain(&self) -> f64 {
        self.with_keys - self.without_keys
    }
}

/// Runs the keys ablation over the given train sizes.
pub fn keys_ablation(setup: &EvalSetup, train_sizes: &[usize]) -> Vec<KeysAblation> {
    let mut out = Vec::new();
    for model in DataModel::ALL {
        for &n in train_sizes {
            let pool: Vec<_> = setup.benchmark.train.iter().take(n).cloned().collect();
            let without = run_config(
                setup,
                SystemKind::T5Picard,
                model,
                Budget::FineTuned(n),
                &pool,
                "ablation-keys",
            );
            let with = run_config(
                setup,
                SystemKind::T5PicardKeys,
                model,
                Budget::FineTuned(n),
                &pool,
                "ablation-keys",
            );
            out.push(KeysAblation {
                model,
                train_size: n,
                without_keys: without.accuracy(),
                with_keys: with.accuracy(),
            });
        }
    }
    out
}

/// Join-path / SemQL representability per data model.
#[derive(Debug, Clone, Copy)]
pub struct JoinPathAblation {
    pub model: DataModel,
    pub total: usize,
    /// Items with no SemQL form or failing join-path reconstruction.
    pub vetoed: usize,
}

impl JoinPathAblation {
    pub fn representable_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.vetoed as f64 / self.total as f64
        }
    }
}

/// Measures the SemQL ceiling on the test set per data model.
pub fn joinpath_ablation(setup: &EvalSetup) -> Vec<JoinPathAblation> {
    DataModel::ALL
        .iter()
        .map(|&model| {
            let profiles = setup.profiles(model);
            JoinPathAblation {
                model,
                total: profiles.len(),
                vetoed: profiles.iter().filter(|p| p.semql_veto).count(),
            }
        })
        .collect()
}

/// The extended-training run: ValueNet with the full clean gold pool
/// (the paper's 895 samples → ≈29% on v3).
pub fn extended_training(setup: &EvalSetup) -> (usize, f64) {
    // "Clean" = processable by the Spider parser / SemQL pipeline, as in
    // the paper (105 of the 1K could not be processed).
    let graph = setup.graph(DataModel::V3);
    let clean: Vec<_> = setup
        .benchmark
        .gold_pool
        .iter()
        .filter(|e| {
            sqlkit::parse_query(e.sql(DataModel::V3))
                .ok()
                .and_then(|q| textosql::SemQl::from_query(&q).ok())
                .and_then(|ir| ir.to_sql(graph).ok())
                .is_some()
        })
        .cloned()
        .collect();
    let n = clean.len();
    let run = run_config(
        setup,
        SystemKind::ValueNet,
        DataModel::V3,
        Budget::FineTuned(n),
        &clean,
        "ablation-895",
    );
    (n, run.accuracy())
}

/// Lexical-gap ablation result for one data model.
#[derive(Debug, Clone, Copy)]
pub struct LexicalAblation {
    pub model: DataModel,
    /// Test questions phrased with gap vocabulary ("second place", …)
    /// whose gold SQL hits a value-encoded concept.
    pub gap_items: usize,
    pub gap_accuracy: f64,
    pub other_accuracy: f64,
}

/// Ablation A4 (paper Section 5.2 / future work): expected accuracy on
/// questions exhibiting the lexical gap versus the rest, per data model,
/// for the best fine-tuned system. v2 stores the runner-up concept as
/// the text value `prize = 'runner-up'`, which user vocabulary misses;
/// v1's FK column and v3's Boolean columns name the concept in the
/// schema. Computed over the full 400-example selection (the 100-item
/// test split may contain no gap-phrased question at all), using the
/// capability model's per-item success probabilities.
pub fn lexical_ablation(setup: &EvalSetup) -> Vec<LexicalAblation> {
    use textosql::{profile_items_with_db, success_probabilities};
    let mut out = Vec::new();
    for model in DataModel::ALL {
        let profiles = profile_items_with_db(
            &setup.benchmark.selected,
            model,
            setup.graph(model),
            Some(setup.db(model)),
        );
        let probs = success_probabilities(
            SystemKind::T5PicardKeys,
            model,
            Budget::FineTuned(300),
            &profiles,
        );
        let mut gap = (0usize, 0.0f64);
        let mut other = (0usize, 0.0f64);
        for (p, prob) in profiles.iter().zip(&probs) {
            let bucket = if p.lexical_gap { &mut gap } else { &mut other };
            bucket.0 += 1;
            bucket.1 += prob;
        }
        let frac = |(n, c): (usize, f64)| if n == 0 { 0.0 } else { c / n as f64 };
        out.push(LexicalAblation {
            model,
            gap_items: gap.0,
            gap_accuracy: frac(gap),
            other_accuracy: frac(other),
        });
    }
    out
}

/// Renders all ablations as text.
pub fn ablation_report(setup: &EvalSetup) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Ablation A1: PK/FK key encoding (T5-Picard vs _Keys)");
    for a in keys_ablation(setup, &[100, 300]) {
        let _ = writeln!(
            out,
            "  {} train={:<4} without={:>6.2}% with={:>6.2}% gain={:+.2}pp",
            a.model,
            a.train_size,
            a.without_keys * 100.0,
            a.with_keys * 100.0,
            a.gain() * 100.0
        );
    }
    let _ = writeln!(out, "\nAblation A2: SemQL join-path representability");
    for a in joinpath_ablation(setup) {
        let _ = writeln!(
            out,
            "  {}: {}/{} gold test queries representable ({:.1}%)",
            a.model,
            a.total - a.vetoed,
            a.total,
            a.representable_fraction() * 100.0
        );
    }
    let (n, acc) = extended_training(setup);
    let _ = writeln!(
        out,
        "\nAblation A3: ValueNet extended training on {} clean samples: {:.2}%",
        n,
        acc * 100.0
    );
    let _ = writeln!(
        out,
        "\nAblation A4: lexical gap (\"second place\" vs prize values)"
    );
    for a in lexical_ablation(setup) {
        let _ = writeln!(
            out,
            "  {}: {} gap questions, accuracy {:.1}% vs {:.1}% on the rest",
            a.model,
            a.gap_items,
            a.gap_accuracy * 100.0,
            a.other_accuracy * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn setup() -> &'static EvalSetup {
        static SETUP: OnceLock<EvalSetup> = OnceLock::new();
        SETUP.get_or_init(|| EvalSetup::small(11))
    }

    #[test]
    fn keys_help_on_v3_at_full_train() {
        let res = keys_ablation(setup(), &[300]);
        let v3 = res
            .iter()
            .find(|a| a.model == DataModel::V3 && a.train_size == 300)
            .unwrap();
        assert!(
            v3.gain() > 0.0,
            "keys gain should be positive on v3: {v3:?}"
        );
    }

    #[test]
    fn v1_is_least_representable_for_semql() {
        let res = joinpath_ablation(setup());
        let frac = |m: DataModel| {
            res.iter()
                .find(|a| a.model == m)
                .unwrap()
                .representable_fraction()
        };
        // v1's multi-FK edges veto the winner/score questions.
        assert!(
            frac(DataModel::V1) < frac(DataModel::V3),
            "v1 {} vs v3 {}",
            frac(DataModel::V1),
            frac(DataModel::V3)
        );
    }

    #[test]
    fn extended_training_beats_300() {
        let s = setup();
        let (n, acc) = extended_training(s);
        assert!(n > 0);
        // Target is ≈29% on v3 (vs 25% at 300 samples).
        assert!(
            (0.15..0.45).contains(&acc),
            "extended-training accuracy {acc} out of band"
        );
    }

    #[test]
    fn ablation_report_renders() {
        let r = ablation_report(setup());
        assert!(r.contains("Ablation A1"));
        assert!(r.contains("Ablation A2"));
        assert!(r.contains("Ablation A3"));
        assert!(r.contains("Ablation A4"));
    }

    #[test]
    fn lexical_gap_only_flags_v2() {
        // Gap questions exist only where the concept is value-encoded:
        // the v2 prize column. v1 and v3 name the concept in the schema.
        let res = lexical_ablation(setup());
        let get = |m: DataModel| res.iter().find(|a| a.model == m).unwrap().gap_items;
        assert_eq!(get(DataModel::V1), 0);
        assert_eq!(get(DataModel::V3), 0);
        // The sampled test set usually contains runner-up questions, but
        // a small draw may not; assert consistency rather than presence.
        let v2 = res.iter().find(|a| a.model == DataModel::V2).unwrap();
        assert!(v2.gap_items <= setup().benchmark.test.len());
    }
}
