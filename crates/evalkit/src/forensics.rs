//! Failure forensics: clause-level diff classification and pipeline-stage
//! attribution for every failed item.
//!
//! The failure taxonomy ([`FailureKind`]) says *that* an item failed;
//! this module says *why*. For `wrong_result` items — historically the
//! opaque majority bucket — the predicted SQL is aligned against gold
//! with the canonicalizing clause differ ([`sqlkit::diff`]), yielding
//! labeled diff classes (wrong join path, value-linking miss, missing
//! group key, ...). Every failed item is then attributed to the pipeline
//! stage ([`PipelineStage`]) that most plausibly produced it, and the
//! results aggregate into per-(system, model, hardness) error
//! fingerprints — the report's Table 5/6 deepening.
//!
//! # Stage-attribution rules
//!
//! Non-`wrong_result` kinds map directly:
//!
//! * `no_sql`, `provider_error`, `panic` → **provider** (nothing usable
//!   crossed the model boundary);
//! * `parse_error` → **decoding** (the decoder emitted malformed SQL);
//! * `unknown_identifier` → **schema linking** (a table/column was
//!   hallucinated or mislinked);
//! * `budget_exceeded` → **join path** when join fuel dominates the
//!   item's trace (a runaway join from a wrong join path), otherwise
//!   **execution**;
//! * `exec_error` → **execution**.
//!
//! `wrong_result` items go by their diff classes, most-specific first:
//! table-set or join-edge divergence → **join path**; otherwise a
//! value-linking miss → **schema linking**; any other non-empty diff →
//! **decoding**. An empty diff on a known divergence (the differ's
//! canonicalization is deliberately lossy in rare corners) or an
//! unparseable prediction is tagged `unclassified` — surfaced, counted
//! against the ≤5% ceiling, and never silently dropped.
//!
//! # Determinism contract
//!
//! Fingerprints are pure functions of `(gold SQL, predicted SQL,
//! failure kind, deterministic trace counters)`; aggregation is
//! commutative integer addition into a `BTreeMap`. The JSON section is
//! therefore byte-identical across `REPRO_THREADS` settings and cache
//! states, like every other deterministic section.

use crate::experiment::{EvalSetup, ItemResult, RunResult};
use crate::metric::FailureKind;
use crate::metrics::{hardness_name, ItemTrace, STAGES};
use sqlkit::morph::dissolving_transform;
use sqlkit::{diff_sql, DiffClass};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use textosql::PipelineStage;

/// Per-item forensic verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemForensics {
    /// Clause-diff classes (non-empty only for classified `wrong_result`
    /// items; direct-mapped kinds carry their stage without classes).
    pub classes: Vec<DiffClass>,
    /// The pipeline stage this failure is attributed to.
    pub stage: PipelineStage,
    /// True for a `wrong_result` item the differ could not explain.
    pub unclassified: bool,
}

/// Classifies one failed item against its gold SQL. `None` for correct
/// items (nothing to explain).
pub fn classify_item(gold_sql: &str, item: &ItemResult) -> Option<ItemForensics> {
    let kind = item.failure?;
    Some(match kind {
        FailureKind::WrongResult => {
            let diff = item
                .predicted_sql
                .as_deref()
                .and_then(|p| diff_sql(gold_sql, p));
            match diff {
                Some(d) if !d.is_empty() => {
                    let classes = d.classes();
                    ItemForensics {
                        stage: stage_for_classes(&classes),
                        classes,
                        unclassified: false,
                    }
                }
                _ => ItemForensics {
                    classes: Vec::new(),
                    stage: PipelineStage::Decoding,
                    unclassified: true,
                },
            }
        }
        other => ItemForensics {
            classes: Vec::new(),
            stage: stage_for_failure(other, &item.trace),
            unclassified: false,
        },
    })
}

fn stage_for_classes(classes: &[DiffClass]) -> PipelineStage {
    use DiffClass as C;
    if classes
        .iter()
        .any(|c| matches!(c, C::MissingTable | C::ExtraTable | C::WrongJoinPath))
    {
        PipelineStage::JoinPath
    } else if classes.contains(&C::ValueLinkingMiss) {
        PipelineStage::SchemaLinking
    } else {
        PipelineStage::Decoding
    }
}

fn stage_for_failure(kind: FailureKind, trace: &ItemTrace) -> PipelineStage {
    match kind {
        FailureKind::NoSql | FailureKind::ProviderError | FailureKind::Panic => {
            PipelineStage::Provider
        }
        FailureKind::ParseError => PipelineStage::Decoding,
        FailureKind::UnknownIdentifier => PipelineStage::SchemaLinking,
        FailureKind::BudgetExceeded => {
            // Where did the fuel go? A budget trip dominated by join fuel
            // is a runaway join — a join-path product — rather than a
            // merely expensive query. Deterministic counters only.
            let join = trace.stage("join").fuel_steps + trace.stage("join").fuel_cells;
            let total: u64 = STAGES
                .iter()
                .map(|s| trace.stage(s).fuel_steps + trace.stage(s).fuel_cells)
                .sum();
            if total > 0 && join * 2 >= total {
                PipelineStage::JoinPath
            } else {
                PipelineStage::Execution
            }
        }
        FailureKind::ExecError => PipelineStage::Execution,
        // Handled by the caller via the clause diff.
        FailureKind::WrongResult => PipelineStage::Decoding,
    }
}

/// One (system, model, hardness) error fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintCell {
    /// Failed items of any kind.
    pub failed: u64,
    /// The `wrong_result` subset.
    pub wrong_result: u64,
    /// `wrong_result` items with a non-empty clause diff.
    pub classified: u64,
    /// `wrong_result` items the differ could not explain.
    pub unclassified: u64,
    /// Items carrying each diff class, per [`DiffClass::ALL`] order
    /// (an item with several classes counts once per class).
    pub classes: [u64; DiffClass::ALL.len()],
    /// Stage attribution over *all* failed items, per
    /// [`PipelineStage::ALL`] order.
    pub stages: [u64; PipelineStage::ALL.len()],
}

impl Default for FingerprintCell {
    fn default() -> Self {
        FingerprintCell {
            failed: 0,
            wrong_result: 0,
            classified: 0,
            unclassified: 0,
            classes: [0; DiffClass::ALL.len()],
            stages: [0; PipelineStage::ALL.len()],
        }
    }
}

impl FingerprintCell {
    fn record(&mut self, kind: FailureKind, f: &ItemForensics) {
        self.failed += 1;
        if kind == FailureKind::WrongResult {
            self.wrong_result += 1;
            if f.unclassified {
                self.unclassified += 1;
            } else {
                self.classified += 1;
            }
        }
        for c in &f.classes {
            let i = DiffClass::ALL.iter().position(|k| k == c).unwrap();
            self.classes[i] += 1;
        }
        let i = PipelineStage::ALL
            .iter()
            .position(|s| *s == f.stage)
            .unwrap();
        self.stages[i] += 1;
    }

    fn merge(&mut self, other: &FingerprintCell) {
        self.failed += other.failed;
        self.wrong_result += other.wrong_result;
        self.classified += other.classified;
        self.unclassified += other.unclassified;
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            *a += b;
        }
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            *a += b;
        }
    }
}

/// Per-(system, model, hardness) error fingerprints over a set of runs.
/// Keys are `Display` names in a `BTreeMap`, so iteration (rendering,
/// JSON) has one deterministic order.
#[derive(Debug, Clone, Default)]
pub struct ForensicsRegistry {
    cells: BTreeMap<(String, String, String), FingerprintCell>,
}

impl ForensicsRegistry {
    pub fn new() -> ForensicsRegistry {
        ForensicsRegistry::default()
    }

    /// Builds fingerprints for every failed item of every run, resolving
    /// gold SQL through the setup's benchmark (per the run's data model).
    pub fn from_runs<'a>(
        setup: &EvalSetup,
        runs: impl IntoIterator<Item = &'a RunResult>,
    ) -> ForensicsRegistry {
        let mut reg = ForensicsRegistry::new();
        for run in runs {
            reg.record_run(setup, run);
        }
        reg
    }

    pub fn record_run(&mut self, setup: &EvalSetup, run: &RunResult) {
        let gold: BTreeMap<usize, &nlq::GoldExample> =
            setup.benchmark.test.iter().map(|g| (g.id, g)).collect();
        for item in &run.items {
            let Some(kind) = item.failure else { continue };
            let Some(example) = gold.get(&item.item_id) else {
                continue;
            };
            let f = classify_item(example.sql(run.model), item)
                .expect("item with a failure kind always classifies");
            let key = (
                run.system.to_string(),
                run.model.to_string(),
                hardness_name(item.hardness).to_string(),
            );
            self.cells.entry(key).or_default().record(kind, &f);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn cells(&self) -> impl Iterator<Item = (&(String, String, String), &FingerprintCell)> {
        self.cells.iter()
    }

    /// Everything folded into one cell (grand totals).
    pub fn totals(&self) -> FingerprintCell {
        let mut total = FingerprintCell::default();
        for cell in self.cells.values() {
            total.merge(cell);
        }
        total
    }

    /// The bucket-sum invariant: classified + unclassified must equal
    /// the `wrong_result` count reported by the failure taxonomy.
    pub fn sum_matches_wrong_result(&self, wrong_result_total: u64) -> bool {
        let t = self.totals();
        t.classified + t.unclassified == wrong_result_total && t.wrong_result == wrong_result_total
    }

    /// Fraction of `wrong_result` items left unclassified (0.0 when
    /// there are none). Gated at ≤5% by the forensics smoke.
    pub fn unclassified_fraction(&self) -> f64 {
        let t = self.totals();
        if t.wrong_result == 0 {
            0.0
        } else {
            t.unclassified as f64 / t.wrong_result as f64
        }
    }

    /// Deterministic JSON: integer counters only, `BTreeMap` order —
    /// byte-identical across thread counts and cache states.
    pub fn deterministic_json(&self, indent: &str) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let total = self.totals();
        let _ = writeln!(out, "{indent}  \"failed\": {},", total.failed);
        let _ = writeln!(out, "{indent}  \"wrong_result\": {},", total.wrong_result);
        let _ = writeln!(out, "{indent}  \"classified\": {},", total.classified);
        let _ = writeln!(out, "{indent}  \"unclassified\": {},", total.unclassified);
        let _ = writeln!(out, "{indent}  \"classes\": {{{}}},", class_counts(&total));
        let _ = writeln!(out, "{indent}  \"stages\": {{{}}},", stage_counts(&total));
        let _ = writeln!(out, "{indent}  \"cells\": {{");
        let mut first = true;
        for ((system, model, hardness), c) in &self.cells {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{indent}    \"{system}|{model}|{hardness}\": {{\"failed\": {}, \
                 \"wrong_result\": {}, \"classified\": {}, \"unclassified\": {}, \
                 \"classes\": {{{}}}, \"stages\": {{{}}}}}",
                c.failed,
                c.wrong_result,
                c.classified,
                c.unclassified,
                class_counts(c),
                stage_counts(c)
            );
        }
        if !first {
            out.push('\n');
        }
        let _ = writeln!(out, "{indent}  }}");
        let _ = write!(out, "{indent}}}");
        out
    }

    /// Text rendering: the report's Table 5/6 deepening. Per
    /// (system, model) rows fold the hardness cells; class and stage
    /// histograms cover the grand totals.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(
            out,
            "Failure forensics (clause-level diff + stage attribution)"
        );
        let _ = writeln!(
            out,
            "{:<14} {:<4} {:>7} {:>6} {:>6}  {:<34} morph suggestion",
            "system", "dm", "failed", "wrong", "uncls", "top clause-diff classes"
        );
        // Fold hardness cells per (system, model).
        let mut folded: BTreeMap<(String, String), FingerprintCell> = BTreeMap::new();
        for ((system, model, _), c) in &self.cells {
            folded
                .entry((system.clone(), model.clone()))
                .or_default()
                .merge(c);
        }
        for ((system, model), c) in &folded {
            let mut top: Vec<(usize, u64)> = c
                .classes
                .iter()
                .copied()
                .enumerate()
                .filter(|(_, n)| *n > 0)
                .collect();
            top.sort_by_key(|&(i, n)| (std::cmp::Reverse(n), i));
            // The schema transform most likely to dissolve this row's
            // dominant divergence class, from the morph layer's mapping —
            // the forensics → robustness-sweep bridge.
            let suggestion = top
                .first()
                .and_then(|&(i, _)| dissolving_transform(DiffClass::ALL[i]))
                .unwrap_or("-");
            let top: Vec<String> = top
                .iter()
                .take(3)
                .map(|&(i, n)| format!("{}:{}", DiffClass::ALL[i].name(), n))
                .collect();
            let _ = writeln!(
                out,
                "{system:<14} {model:<4} {:>7} {:>6} {:>6}  {:<34} {suggestion}",
                c.failed,
                c.wrong_result,
                c.unclassified,
                top.join(" ")
            );
        }
        let total = self.totals();
        let _ = writeln!(out, "\nstage attribution over all failed items:");
        for (i, s) in PipelineStage::ALL.iter().enumerate() {
            if total.stages[i] == 0 {
                continue;
            }
            let pct = if total.failed == 0 {
                0.0
            } else {
                total.stages[i] as f64 / total.failed as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>6}  ({pct:.2}%)",
                s.name(),
                total.stages[i]
            );
        }
        let _ = writeln!(out, "\nclause-diff class totals over wrong_result items:");
        for (i, c) in DiffClass::ALL.iter().enumerate() {
            if total.classes[i] == 0 {
                continue;
            }
            let _ = writeln!(out, "  {:<20} {:>6}", c.name(), total.classes[i]);
        }
        let uncls_pct = self.unclassified_fraction() * 100.0;
        let _ = writeln!(
            out,
            "\nwrong_result {} = classified {} + unclassified {} ({uncls_pct:.2}% unclassified)",
            total.wrong_result, total.classified, total.unclassified
        );
        out
    }
}

fn class_counts(c: &FingerprintCell) -> String {
    DiffClass::ALL
        .iter()
        .enumerate()
        .map(|(i, k)| format!("\"{}\": {}", k.name(), c.classes[i]))
        .collect::<Vec<_>>()
        .join(", ")
}

fn stage_counts(c: &FingerprintCell) -> String {
    PipelineStage::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| format!("\"{}\": {}", s.name(), c.stages[i]))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The `wrong_result` item total across runs, straight from the failure
/// taxonomy — the number the fingerprint buckets must sum to.
pub fn wrong_result_total<'a>(runs: impl IntoIterator<Item = &'a RunResult>) -> u64 {
    runs.into_iter()
        .flat_map(|r| &r.items)
        .filter(|i| i.failure == Some(FailureKind::WrongResult))
        .count() as u64
}

/// Renders the forensics section for a set of runs (used by
/// `report::full_report`).
pub fn forensics_report(setup: &EvalSetup, runs: &[RunResult]) -> String {
    ForensicsRegistry::from_runs(setup, runs).render()
}

/// The N worst `wrong_result` items across runs — "worst" by clause-diff
/// distance (most divergent prediction first), ties broken by
/// (system, model, item id) so the ranking is deterministic. Each entry
/// renders the question, gold and predicted SQL, and every clause edit
/// inline, plus the morph transform most likely to dissolve the dominant
/// divergence. `repro forensics --worst N` surfaces this.
pub fn worst_items_report(setup: &EvalSetup, runs: &[RunResult], n: usize) -> String {
    let gold: BTreeMap<usize, &nlq::GoldExample> =
        setup.benchmark.test.iter().map(|g| (g.id, g)).collect();
    struct Worst<'a> {
        system: String,
        model: String,
        example: &'a nlq::GoldExample,
        gold_sql: &'a str,
        pred_sql: &'a str,
        diff: sqlkit::ClauseDiff,
    }
    let mut worst: Vec<Worst> = Vec::new();
    for run in runs {
        for item in &run.items {
            if item.failure != Some(FailureKind::WrongResult) {
                continue;
            }
            let Some(example) = gold.get(&item.item_id) else {
                continue;
            };
            let Some(pred) = item.predicted_sql.as_deref() else {
                continue;
            };
            let gold_sql = example.sql(run.model);
            let Some(diff) = diff_sql(gold_sql, pred) else {
                continue;
            };
            if diff.is_empty() {
                continue;
            }
            worst.push(Worst {
                system: run.system.to_string(),
                model: run.model.to_string(),
                example,
                gold_sql,
                pred_sql: pred,
                diff,
            });
        }
    }
    worst.sort_by(|a, b| {
        b.diff
            .distance()
            .cmp(&a.diff.distance())
            .then_with(|| a.system.cmp(&b.system))
            .then_with(|| a.model.cmp(&b.model))
            .then_with(|| a.example.id.cmp(&b.example.id))
    });

    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "{} worst wrong_result items by clause-diff distance ({} candidates)",
        n.min(worst.len()),
        worst.len()
    );
    for (rank, w) in worst.iter().take(n).enumerate() {
        let _ = writeln!(
            out,
            "\n#{} [{} on {}] question {} (distance {})",
            rank + 1,
            w.system,
            w.model,
            w.example.id,
            w.diff.distance()
        );
        let _ = writeln!(out, "  Q:    {}", w.example.question);
        let _ = writeln!(out, "  gold: {}", w.gold_sql);
        let _ = writeln!(out, "  pred: {}", w.pred_sql);
        for e in &w.diff.edits {
            let _ = writeln!(
                out,
                "    {:<20} gold: {:<32} pred: {}",
                e.class.name(),
                e.gold.as_deref().unwrap_or("-"),
                e.pred.as_deref().unwrap_or("-")
            );
        }
        let suggestion = w
            .diff
            .classes()
            .iter()
            .find_map(|&c| dissolving_transform(c))
            .unwrap_or("none (shape-level divergence)");
        let _ = writeln!(out, "    dissolving morph: {suggestion}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::ExOutcome;
    use sqlkit::{Hardness, QueryStats};

    fn item(failure: Option<FailureKind>, predicted: Option<&str>) -> ItemResult {
        ItemResult {
            item_id: 0,
            outcome: match failure {
                None => ExOutcome::Correct,
                Some(k) => k.as_outcome(),
            },
            failure,
            predicted_sql: predicted.map(str::to_string),
            latency: 1.0,
            shots_used: 0,
            hardness: Hardness::Easy,
            stats: QueryStats::default(),
            trace: ItemTrace::default(),
            fault: None,
            retries: 0,
            gave_up: false,
        }
    }

    const GOLD: &str = "SELECT count(*) FROM t JOIN u ON t.id = u.id WHERE u.name = 'England'";

    #[test]
    fn correct_items_have_nothing_to_explain() {
        assert!(classify_item(GOLD, &item(None, Some(GOLD))).is_none());
    }

    #[test]
    fn value_linking_miss_attributes_to_schema_linking() {
        let pred = "SELECT count(*) FROM t JOIN u ON t.id = u.id WHERE u.name = 'Germany'";
        let f = classify_item(GOLD, &item(Some(FailureKind::WrongResult), Some(pred))).unwrap();
        assert_eq!(f.classes, vec![DiffClass::ValueLinkingMiss]);
        assert_eq!(f.stage, PipelineStage::SchemaLinking);
        assert!(!f.unclassified);
    }

    #[test]
    fn join_edge_divergence_attributes_to_join_path() {
        let pred = "SELECT count(*) FROM t JOIN u ON t.uid = u.id WHERE u.name = 'England'";
        let f = classify_item(GOLD, &item(Some(FailureKind::WrongResult), Some(pred))).unwrap();
        assert!(f.classes.contains(&DiffClass::WrongJoinPath));
        assert_eq!(f.stage, PipelineStage::JoinPath);
    }

    #[test]
    fn dropped_clause_attributes_to_decoding() {
        let pred = "SELECT count(*) FROM t JOIN u ON t.id = u.id";
        let f = classify_item(GOLD, &item(Some(FailureKind::WrongResult), Some(pred))).unwrap();
        assert_eq!(f.classes, vec![DiffClass::MissingPredicate]);
        assert_eq!(f.stage, PipelineStage::Decoding);
    }

    #[test]
    fn direct_kinds_map_to_their_stages() {
        let cases = [
            (FailureKind::NoSql, PipelineStage::Provider),
            (FailureKind::ProviderError, PipelineStage::Provider),
            (FailureKind::Panic, PipelineStage::Provider),
            (FailureKind::ParseError, PipelineStage::Decoding),
            (FailureKind::UnknownIdentifier, PipelineStage::SchemaLinking),
            (FailureKind::ExecError, PipelineStage::Execution),
        ];
        for (kind, stage) in cases {
            let f = classify_item(GOLD, &item(Some(kind), None)).unwrap();
            assert_eq!(f.stage, stage, "{kind}");
            assert!(f.classes.is_empty());
            assert!(!f.unclassified);
        }
    }

    #[test]
    fn unparseable_prediction_is_unclassified() {
        let f = classify_item(
            GOLD,
            &item(Some(FailureKind::WrongResult), Some("not sql at all")),
        )
        .unwrap();
        assert!(f.unclassified);
        assert!(f.classes.is_empty());
    }

    #[test]
    fn budget_trip_with_join_heavy_fuel_is_join_path() {
        let mut heavy = item(Some(FailureKind::BudgetExceeded), None);
        let join_slot = STAGES.iter().position(|&s| s == "join").unwrap();
        heavy.trace.stages[join_slot].fuel_steps = 900;
        let scan_slot = STAGES.iter().position(|&s| s == "scan").unwrap();
        heavy.trace.stages[scan_slot].fuel_steps = 100;
        let f = classify_item(GOLD, &heavy).unwrap();
        assert_eq!(f.stage, PipelineStage::JoinPath);

        let mut light = item(Some(FailureKind::BudgetExceeded), None);
        light.trace.stages[scan_slot].fuel_steps = 900;
        light.trace.stages[join_slot].fuel_steps = 100;
        let f = classify_item(GOLD, &light).unwrap();
        assert_eq!(f.stage, PipelineStage::Execution);
    }

    #[test]
    fn fingerprint_cell_invariant_holds() {
        let mut cell = FingerprintCell::default();
        for (kind, pred) in [
            (FailureKind::WrongResult, Some("SELECT count(*) FROM t")),
            (FailureKind::WrongResult, Some("not sql")),
            (FailureKind::ParseError, None),
        ] {
            let it = item(Some(kind), pred);
            let f = classify_item(GOLD, &it).unwrap();
            cell.record(kind, &f);
        }
        assert_eq!(cell.failed, 3);
        assert_eq!(cell.wrong_result, 2);
        assert_eq!(cell.classified + cell.unclassified, cell.wrong_result);
        assert_eq!(cell.unclassified, 1);
    }
}
