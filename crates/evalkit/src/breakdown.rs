//! Accuracy breakdowns for Figures 7 and 8, plus the failure-kind
//! breakdown backing the forensics report.

use crate::experiment::{ItemResult, RunResult};
use crate::metric::FailureKind;
use sqlkit::Hardness;

/// Accuracy and count for one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    pub count: usize,
    pub correct: usize,
}

impl Bucket {
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }
}

fn bucketize<'a>(
    items: impl Iterator<Item = &'a ItemResult>,
    key: impl Fn(&ItemResult) -> usize,
    n_buckets: usize,
) -> Vec<Bucket> {
    let mut out = vec![
        Bucket {
            count: 0,
            correct: 0
        };
        n_buckets
    ];
    for item in items {
        let b = key(item).min(n_buckets - 1);
        out[b].count += 1;
        if item.outcome.is_correct() {
            out[b].correct += 1;
        }
    }
    out
}

/// Figure 7: accuracy per Spider hardness level (easy…extra).
pub fn by_hardness(run: &RunResult) -> Vec<(Hardness, Bucket)> {
    let buckets = bucketize(run.items.iter(), |i| (i.hardness.numeric() - 1) as usize, 4);
    Hardness::ALL.into_iter().zip(buckets).collect()
}

/// A query-characteristic axis of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Characteristic {
    Joins,
    Projections,
    Filters,
    Aggregations,
    SetOps,
    Subqueries,
}

impl Characteristic {
    pub const ALL: [Characteristic; 6] = [
        Characteristic::Joins,
        Characteristic::Projections,
        Characteristic::Filters,
        Characteristic::Aggregations,
        Characteristic::SetOps,
        Characteristic::Subqueries,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Characteristic::Joins => "#joins",
            Characteristic::Projections => "#projections",
            Characteristic::Filters => "#filters",
            Characteristic::Aggregations => "#aggregations",
            Characteristic::SetOps => "#set ops",
            Characteristic::Subqueries => "#subqueries",
        }
    }

    fn of(self, item: &ItemResult) -> usize {
        match self {
            Characteristic::Joins => item.stats.joins,
            Characteristic::Projections => item.stats.projections,
            Characteristic::Filters => item.stats.filters,
            Characteristic::Aggregations => item.stats.aggregations,
            Characteristic::SetOps => item.stats.set_ops,
            Characteristic::Subqueries => item.stats.subqueries,
        }
    }
}

/// Figure 8: accuracy per characteristic count, bucketed as
/// {0, 1, ≥2} (the paper's per-characteristic bars).
pub fn by_characteristic(run: &RunResult, ch: Characteristic) -> Vec<Bucket> {
    bucketize(run.items.iter(), |i| ch.of(i), 3)
}

/// Failure-kind breakdown over a run's failed items, derived from each
/// item's *classified* `failure` (the `classify_engine_error` verdict
/// recorded at execution time) — never re-derived from the outcome.
///
/// Returned in [`FailureKind::ALL`] order with zero-count kinds
/// included, so rows line up with [`RunResult::failure_counts`]. The
/// historic bug pinned by `by_failure_agrees_with_failure_counts`:
/// stamping every incorrect item `WrongResult` inflated the
/// wrong-result bucket with parse/identifier/budget failures and made
/// the breakdown disagree with `failure_counts()`.
pub fn by_failure(run: &RunResult) -> Vec<(FailureKind, Bucket)> {
    FailureKind::ALL
        .iter()
        .map(|&k| {
            let count = run.items.iter().filter(|i| i.failure == Some(k)).count();
            (k, Bucket { count, correct: 0 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::ExOutcome;
    use footballdb::DataModel;
    use sqlkit::QueryStats;
    use textosql::{Budget, SystemKind};

    fn item(h: Hardness, joins: usize, failure: Option<FailureKind>) -> ItemResult {
        ItemResult {
            item_id: 0,
            // Outcome follows the classified failure. The old fixture
            // hardcoded WrongResult for every incorrect item — exactly
            // the misclassification `by_failure` now guards against.
            outcome: match failure {
                None => ExOutcome::Correct,
                Some(k) => k.as_outcome(),
            },
            failure,
            predicted_sql: None,
            latency: 1.0,
            shots_used: 0,
            hardness: h,
            stats: QueryStats {
                joins,
                ..QueryStats::default()
            },
            trace: crate::metrics::ItemTrace::default(),
            fault: None,
            retries: 0,
            gave_up: false,
        }
    }

    fn run(items: Vec<ItemResult>) -> RunResult {
        RunResult {
            system: SystemKind::Gpt35,
            model: DataModel::V1,
            budget: Budget::FewShot(10),
            items,
        }
    }

    #[test]
    fn hardness_buckets_count_and_score() {
        let r = run(vec![
            item(Hardness::Easy, 0, None),
            item(Hardness::Easy, 0, Some(FailureKind::WrongResult)),
            item(Hardness::Extra, 3, Some(FailureKind::WrongResult)),
        ]);
        let b = by_hardness(&r);
        assert_eq!(b[0].0, Hardness::Easy);
        assert_eq!(b[0].1.count, 2);
        assert_eq!(b[0].1.correct, 1);
        assert_eq!(b[3].1.count, 1);
        assert_eq!(b[3].1.accuracy(), 0.0);
        assert_eq!(b[1].1.count, 0);
    }

    #[test]
    fn characteristic_buckets_saturate_at_two() {
        let r = run(vec![
            item(Hardness::Easy, 0, None),
            item(Hardness::Easy, 1, None),
            item(Hardness::Easy, 2, Some(FailureKind::WrongResult)),
            item(Hardness::Easy, 5, None),
        ]);
        let b = by_characteristic(&r, Characteristic::Joins);
        assert_eq!(b[0].count, 1);
        assert_eq!(b[1].count, 1);
        assert_eq!(b[2].count, 2);
        assert_eq!(b[2].correct, 1);
    }

    #[test]
    fn empty_bucket_accuracy_zero() {
        assert_eq!(
            Bucket {
                count: 0,
                correct: 0
            }
            .accuracy(),
            0.0
        );
    }

    #[test]
    fn labels_cover_axes() {
        assert_eq!(Characteristic::ALL.len(), 6);
        assert_eq!(Characteristic::SetOps.label(), "#set ops");
    }

    /// Regression: incorrect items keep their classified failure kind.
    /// The breakdown used to stamp every one of them `WrongResult`,
    /// which made parse/identifier/exec failures inflate the
    /// wrong-result bucket and disagree with `failure_counts()`.
    #[test]
    fn by_failure_agrees_with_failure_counts() {
        use crate::metric::classify_engine_error;
        use sqlengine::EngineError;

        let parse_kind = classify_engine_error(&EngineError::Parse(
            sqlkit::parse_query("SELECT").unwrap_err(),
        ));
        let ident_kind = classify_engine_error(&EngineError::UnknownColumn("zz".into()));
        let exec_kind = classify_engine_error(&EngineError::Eval("bad operand".into()));
        assert_eq!(parse_kind, FailureKind::ParseError);
        assert_eq!(ident_kind, FailureKind::UnknownIdentifier);
        assert_eq!(exec_kind, FailureKind::ExecError);

        let r = run(vec![
            item(Hardness::Easy, 0, None),
            item(Hardness::Easy, 0, Some(FailureKind::WrongResult)),
            item(Hardness::Medium, 1, Some(parse_kind)),
            item(Hardness::Medium, 1, Some(ident_kind)),
            item(Hardness::Hard, 2, Some(exec_kind)),
        ]);

        let by = by_failure(&r);
        let counts = r.failure_counts();
        assert_eq!(by.len(), counts.len());
        for ((k1, b), (k2, n)) in by.iter().zip(counts.iter()) {
            assert_eq!(k1, k2);
            assert_eq!(b.count, *n, "bucket for {k1} disagrees");
        }
        // Only the genuinely wrong-result item lands in that bucket.
        let wrong = by
            .iter()
            .find(|(k, _)| *k == FailureKind::WrongResult)
            .unwrap();
        assert_eq!(wrong.1.count, 1);
        // And the failed-item total is preserved, not re-bucketed.
        let failed: usize = by.iter().map(|(_, b)| b.count).sum();
        assert_eq!(failed, 4);
    }
}
