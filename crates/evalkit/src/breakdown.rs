//! Accuracy breakdowns for Figures 7 and 8.

use crate::experiment::{ItemResult, RunResult};
use sqlkit::Hardness;

/// Accuracy and count for one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    pub count: usize,
    pub correct: usize,
}

impl Bucket {
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }
}

fn bucketize<'a>(
    items: impl Iterator<Item = &'a ItemResult>,
    key: impl Fn(&ItemResult) -> usize,
    n_buckets: usize,
) -> Vec<Bucket> {
    let mut out = vec![
        Bucket {
            count: 0,
            correct: 0
        };
        n_buckets
    ];
    for item in items {
        let b = key(item).min(n_buckets - 1);
        out[b].count += 1;
        if item.outcome.is_correct() {
            out[b].correct += 1;
        }
    }
    out
}

/// Figure 7: accuracy per Spider hardness level (easy…extra).
pub fn by_hardness(run: &RunResult) -> Vec<(Hardness, Bucket)> {
    let buckets = bucketize(run.items.iter(), |i| (i.hardness.numeric() - 1) as usize, 4);
    Hardness::ALL.into_iter().zip(buckets).collect()
}

/// A query-characteristic axis of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Characteristic {
    Joins,
    Projections,
    Filters,
    Aggregations,
    SetOps,
    Subqueries,
}

impl Characteristic {
    pub const ALL: [Characteristic; 6] = [
        Characteristic::Joins,
        Characteristic::Projections,
        Characteristic::Filters,
        Characteristic::Aggregations,
        Characteristic::SetOps,
        Characteristic::Subqueries,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Characteristic::Joins => "#joins",
            Characteristic::Projections => "#projections",
            Characteristic::Filters => "#filters",
            Characteristic::Aggregations => "#aggregations",
            Characteristic::SetOps => "#set ops",
            Characteristic::Subqueries => "#subqueries",
        }
    }

    fn of(self, item: &ItemResult) -> usize {
        match self {
            Characteristic::Joins => item.stats.joins,
            Characteristic::Projections => item.stats.projections,
            Characteristic::Filters => item.stats.filters,
            Characteristic::Aggregations => item.stats.aggregations,
            Characteristic::SetOps => item.stats.set_ops,
            Characteristic::Subqueries => item.stats.subqueries,
        }
    }
}

/// Figure 8: accuracy per characteristic count, bucketed as
/// {0, 1, ≥2} (the paper's per-characteristic bars).
pub fn by_characteristic(run: &RunResult, ch: Characteristic) -> Vec<Bucket> {
    bucketize(run.items.iter(), |i| ch.of(i), 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::ExOutcome;
    use footballdb::DataModel;
    use sqlkit::QueryStats;
    use textosql::{Budget, SystemKind};

    fn item(h: Hardness, joins: usize, correct: bool) -> ItemResult {
        ItemResult {
            item_id: 0,
            outcome: if correct {
                ExOutcome::Correct
            } else {
                ExOutcome::WrongResult
            },
            failure: (!correct).then_some(crate::metric::FailureKind::WrongResult),
            latency: 1.0,
            shots_used: 0,
            hardness: h,
            stats: QueryStats {
                joins,
                ..QueryStats::default()
            },
            trace: crate::metrics::ItemTrace::default(),
            fault: None,
            retries: 0,
            gave_up: false,
        }
    }

    fn run(items: Vec<ItemResult>) -> RunResult {
        RunResult {
            system: SystemKind::Gpt35,
            model: DataModel::V1,
            budget: Budget::FewShot(10),
            items,
        }
    }

    #[test]
    fn hardness_buckets_count_and_score() {
        let r = run(vec![
            item(Hardness::Easy, 0, true),
            item(Hardness::Easy, 0, false),
            item(Hardness::Extra, 3, false),
        ]);
        let b = by_hardness(&r);
        assert_eq!(b[0].0, Hardness::Easy);
        assert_eq!(b[0].1.count, 2);
        assert_eq!(b[0].1.correct, 1);
        assert_eq!(b[3].1.count, 1);
        assert_eq!(b[3].1.accuracy(), 0.0);
        assert_eq!(b[1].1.count, 0);
    }

    #[test]
    fn characteristic_buckets_saturate_at_two() {
        let r = run(vec![
            item(Hardness::Easy, 0, true),
            item(Hardness::Easy, 1, true),
            item(Hardness::Easy, 2, false),
            item(Hardness::Easy, 5, true),
        ]);
        let b = by_characteristic(&r, Characteristic::Joins);
        assert_eq!(b[0].count, 1);
        assert_eq!(b[1].count, 1);
        assert_eq!(b[2].count, 2);
        assert_eq!(b[2].correct, 1);
    }

    #[test]
    fn empty_bucket_accuracy_zero() {
        assert_eq!(
            Bucket {
                count: 0,
                correct: 0
            }
            .accuracy(),
            0.0
        );
    }

    #[test]
    fn labels_cover_axes() {
        assert_eq!(Characteristic::ALL.len(), 6);
        assert_eq!(Characteristic::SetOps.label(), "#set ops");
    }
}
