//! Report renderers: one function per table/figure of the paper.
//!
//! Each renderer returns plain text in the shape of the corresponding
//! paper table so a side-by-side comparison is immediate. The `repro`
//! binary in the `bench` crate prints them.

use crate::breakdown::{by_characteristic, by_hardness, Characteristic};
use crate::experiment::{
    run_fewshot_grid, run_finetuned_grid, run_latency, EvalSetup, FoldedResult, RunResult,
};
use footballdb::{dataset_stats, DataModel};
use nlq::{simulate_log, GoldExample, LogStats, PAPER_LOG_SIZE};
use sqlkit::{analyze_sql, classify_sql, mean_hardness, mean_stats, QueryStats};
use std::fmt::Write;
use textosql::{cost_params, SystemKind};
use xrng::Rng;

/// Formats a proportion as a percentage. A non-finite proportion (the
/// 0/0 of an empty sample) renders as `n/a` instead of a
/// plausible-looking number.
fn pct(x: f64) -> String {
    if x.is_finite() {
        format!("{:.2}%", x * 100.0)
    } else {
        "n/a".to_string()
    }
}

/// Share of `n` out of `total`, explicit about the empty case: a zero
/// total is `n/a`, never a fabricated `0.00%`.
fn pct_of(n: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_string()
    } else {
        pct(n as f64 / total as f64)
    }
}

/// Table 1: statistics of the simulated live user logs.
pub fn table1(setup: &EvalSetup) -> String {
    let mut rng = Rng::new(setup.seed).fork("table1");
    let entries = simulate_log(&setup.domain, &mut rng, PAPER_LOG_SIZE);
    let s = LogStats::from_entries(&entries);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: Statistics of live user logs (simulated deployment)"
    );
    let _ = writeln!(out, "{:<32}{:>8}", "Type of User Log", "Amount");
    let _ = writeln!(out, "{:<32}{:>8}", "#NL questions issued", s.questions);
    let _ = writeln!(out, "{:<32}{:>8}", "#Times SQL generated", s.sql_generated);
    let _ = writeln!(
        out,
        "{:<32}{:>8}",
        "#Times no SQL generated", s.no_sql_generated
    );
    let _ = writeln!(out, "{:<32}{:>8}", "#Thumbs up", s.thumbs_up);
    let _ = writeln!(out, "{:<32}{:>8}", "#Thumbs down", s.thumbs_down);
    let _ = writeln!(
        out,
        "{:<32}{:>8}",
        "#User corrected SQL queries", s.corrected
    );
    out
}

/// Table 2: characteristics of FootballDB across the three data models.
pub fn table2(setup: &EvalSetup) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Characteristics of FootballDB across data models"
    );
    let _ = writeln!(
        out,
        "{:<26}{:>10}{:>10}{:>10}",
        "", "DB v1", "DB v2", "DB v3"
    );
    let stats: Vec<_> = DataModel::ALL
        .iter()
        .map(|m| dataset_stats(*m, setup.db(*m)))
        .collect();
    let row = |label: &str, f: &dyn Fn(&footballdb::DatasetStats) -> String| {
        let mut line = format!("{label:<26}");
        for s in &stats {
            let _ = write!(line, "{:>10}", f(s));
        }
        line
    };
    let _ = writeln!(out, "{}", row("#Tables", &|s| s.tables.to_string()));
    let _ = writeln!(out, "{}", row("#Columns", &|s| s.columns.to_string()));
    let _ = writeln!(out, "{}", row("#Rows", &|s| s.rows.to_string()));
    let _ = writeln!(out, "{}", row("#FKs", &|s| s.foreign_keys.to_string()));
    let _ = writeln!(
        out,
        "{}",
        row("Mean #Columns per Table", &|s| format!(
            "{:.2}",
            s.mean_columns_per_table
        ))
    );
    let _ = writeln!(
        out,
        "{}",
        row("Mean #Rows per Table", &|s| format!(
            "{:.0}",
            s.mean_rows_per_table
        ))
    );
    out
}

fn corpus_stats(examples: &[GoldExample], model: DataModel) -> (sqlkit::MeanStats, f64) {
    let stats: Vec<QueryStats> = examples.iter().map(|e| analyze_sql(e.sql(model))).collect();
    let hard: Vec<_> = examples
        .iter()
        .map(|e| classify_sql(e.sql(model)))
        .collect();
    (mean_stats(&stats), mean_hardness(&hard))
}

/// Table 3: query characteristics of the train and test sets.
pub fn table3(setup: &EvalSetup) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Query characteristics (means)");
    let _ = writeln!(
        out,
        "{:<22}{:>8}{:>8}{:>8}  |{:>8}{:>8}{:>8}",
        "", "tr v1", "tr v2", "tr v3", "te v1", "te v2", "te v3"
    );
    let mut cols: Vec<(sqlkit::MeanStats, f64)> = Vec::new();
    for set in [&setup.benchmark.train, &setup.benchmark.test] {
        for m in DataModel::ALL {
            cols.push(corpus_stats(set, m));
        }
    }
    type RowFn = Box<dyn Fn(&sqlkit::MeanStats, f64) -> f64>;
    let rows: [(&str, RowFn); 8] = [
        ("#Joins", Box::new(|s, _| s.joins)),
        ("#Projections", Box::new(|s, _| s.projections)),
        ("#Filters", Box::new(|s, _| s.filters)),
        ("#Aggregations", Box::new(|s, _| s.aggregations)),
        ("#Set Operations", Box::new(|s, _| s.set_ops)),
        ("#Subqueries", Box::new(|s, _| s.subqueries)),
        ("Mean Hardness", Box::new(|_, h| h)),
        ("Mean Query Length", Box::new(|s, _| s.chars)),
    ];
    for (label, f) in rows {
        let mut line = format!("{label:<22}");
        for (i, (s, h)) in cols.iter().enumerate() {
            if i == 3 {
                let _ = write!(line, "  |");
            }
            let v = f(s, *h);
            let _ = write!(line, "{:>8}", format!("{v:.2}"));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Table 4: characteristics of the evaluated systems.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: Characteristics of the Text-to-SQL systems");
    let _ = writeln!(
        out,
        "{:<22}{:>14}{:>14}{:>16}{:>12}{:>14}",
        "Dimension", "ValueNet", "T5-Picard", "T5-Picard_Keys", "GPT-3.5", "LLaMA2-70B"
    );
    let systems = SystemKind::ALL;
    let row = |label: &str, f: &dyn Fn(SystemKind) -> String| {
        let mut line = format!("{label:<22}");
        for (i, s) in systems.iter().enumerate() {
            let w = [14, 14, 16, 12, 14][i];
            let _ = write!(line, "{:>w$}", f(*s), w = w);
        }
        line
    };
    let _ = writeln!(
        out,
        "{}",
        row("Scale (#Params)", &|s| {
            let m = s.params_millions();
            if m >= 1000 {
                format!("{}B", m / 1000)
            } else {
                format!("{m}M")
            }
        })
    );
    let _ = writeln!(
        out,
        "{}",
        row("DB Schema w/ FK", &|s| if s.uses_keys() {
            "with".into()
        } else {
            "without".into()
        })
    );
    let _ = writeln!(
        out,
        "{}",
        row("DB Content", &|s| if s.uses_content() {
            "Yes".into()
        } else {
            "No".into()
        })
    );
    let _ = writeln!(
        out,
        "{}",
        row("Output", &|s| match s {
            SystemKind::ValueNet => "IR".into(),
            _ => "SQL".into(),
        })
    );
    let _ = writeln!(
        out,
        "{}",
        row("Post-processing", &|s| match s {
            SystemKind::ValueNet => "IR to SQL".into(),
            SystemKind::T5Picard | SystemKind::T5PicardKeys => "Picard".into(),
            _ => "N/A".into(),
        })
    );
    out
}

/// Table 5: execution accuracy of the fine-tuned systems.
pub fn table5(runs: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Execution accuracy (fine-tuned systems)");
    let _ = writeln!(
        out,
        "{:<8}{:<10}{:>12}{:>12}{:>16}",
        "Model", "Train", "ValueNet", "T5-Picard", "T5-Picard_Keys"
    );
    let mut sizes: Vec<usize> = runs.iter().map(|r| r.budget.size()).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for model in DataModel::ALL {
        for &n in &sizes {
            let acc = |k: SystemKind| {
                runs.iter()
                    .find(|r| r.system == k && r.model == model && r.budget.size() == n)
                    .map(|r| pct(r.accuracy()))
                    .unwrap_or_else(|| "-".into())
            };
            let label = if n == 0 {
                "zero".to_string()
            } else {
                n.to_string()
            };
            let _ = writeln!(
                out,
                "{:<8}{:<10}{:>12}{:>12}{:>16}",
                model.label(),
                label,
                acc(SystemKind::ValueNet),
                acc(SystemKind::T5Picard),
                acc(SystemKind::T5PicardKeys)
            );
        }
    }
    out
}

/// Table 6: execution accuracy of the LLM systems (mean ± sd over
/// folds).
pub fn table6(results: &[FoldedResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 6: Execution accuracy (large language models)");
    let _ = writeln!(
        out,
        "{:<8}{:<8}{:>22}   {:<8}{:>22}",
        "Model", "#Shots", "GPT-3.5", "#Shots", "LLaMA2-70B"
    );
    for model in DataModel::ALL {
        let gpt: Vec<&FoldedResult> = results
            .iter()
            .filter(|r| r.system == SystemKind::Gpt35 && r.model == model)
            .collect();
        let llama: Vec<&FoldedResult> = results
            .iter()
            .filter(|r| r.system == SystemKind::Llama2 && r.model == model)
            .collect();
        for (g, l) in gpt.iter().zip(&llama) {
            let fmt = |r: &FoldedResult| {
                // A ± needs at least two folds; a single fold has no
                // spread to report and gets an explicit n=1 marker, and
                // no folds at all is n/a, not a zero.
                match r.fold_accuracies.len() {
                    0 => "n/a".to_string(),
                    _ if r.shots == 0 => pct(r.mean()),
                    1 => format!("{} (n=1)", pct(r.mean())),
                    _ => format!("{} (±{})", pct(r.mean()), pct(r.sd())),
                }
            };
            let _ = writeln!(
                out,
                "{:<8}{:<8}{:>22}   {:<8}{:>22}",
                model.label(),
                g.shots,
                fmt(g),
                l.shots,
                fmt(l)
            );
        }
    }
    out
}

/// Table 7: inference time per system.
pub fn table7(latencies: &[(SystemKind, f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 7: Inference time per query (seconds)");
    let _ = writeln!(
        out,
        "{:<18}{:>16}{:>12}{:>8}",
        "System", "Time (s)", "Hardware", "#GPUs"
    );
    for (kind, mean, sd) in latencies {
        let p = cost_params(*kind);
        let gpus = if p.gpus == 0 {
            "-".to_string()
        } else {
            p.gpus.to_string()
        };
        let _ = writeln!(
            out,
            "{:<18}{:>16}{:>12}{:>8}",
            kind.name(),
            format!("{mean:.2} ±{sd:.2}"),
            p.hardware,
            gpus
        );
    }
    out
}

/// Table 8: comparison with existing Text-to-SQL datasets. Prior rows
/// are the published numbers; the FootballDB row is computed from this
/// reproduction.
pub fn table8(setup: &EvalSetup) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 8: Comparison with existing Text-to-SQL datasets"
    );
    let _ = writeln!(
        out,
        "{:<16}{:>18}{:>20}{:>15}{:>14}{:>12}",
        "Dataset",
        "#Examples(#DBs)",
        "#Tables(#Rows)/DB",
        "#Tokens/Query",
        "Multi-Schema",
        "Live Users"
    );
    let fixed = [
        ("WikiSQL", "80,654 (26,521)", "1 (17)", "12.2", "no", "no"),
        ("SPIDER", "10,181 (200)", "5.1 (2K)", "18.5", "no", "no"),
        ("KaggleDBQA", "272 (8)", "2.3 (280K)", "13.8", "no", "no"),
        (
            "ScienceBench.",
            "5,332 (3)",
            "16.7 (51M)",
            "15.6",
            "no",
            "(yes)",
        ),
        ("BIRD", "12,751 (95)", "7.3 (549K)", "30.9", "no", "no"),
    ];
    for (name, ex, tr, tok, ms, lu) in fixed {
        let _ = writeln!(out, "{name:<16}{ex:>18}{tr:>20}{tok:>15}{ms:>14}{lu:>12}");
    }
    // Computed FootballDB row.
    let n_examples = setup.benchmark.selected.len() * 3;
    let mean_tables: f64 = DataModel::ALL
        .iter()
        .map(|m| m.catalog().table_count() as f64)
        .sum::<f64>()
        / 3.0;
    let mean_rows: f64 = DataModel::ALL
        .iter()
        .map(|m| setup.db(*m).total_rows() as f64)
        .sum::<f64>()
        / 3.0;
    let mut toks = 0usize;
    let mut cnt = 0usize;
    for e in &setup.benchmark.selected {
        for m in DataModel::ALL {
            toks += analyze_sql(e.sql(m)).tokens;
            cnt += 1;
        }
    }
    let _ = writeln!(
        out,
        "{:<16}{:>18}{:>20}{:>15}{:>14}{:>12}",
        "FootballDB",
        format!("{n_examples} (3)"),
        format!("{:.0} ({:.0}K)", mean_tables, mean_rows / 1000.0),
        format!("{:.1}", toks as f64 / cnt.max(1) as f64),
        "yes",
        "yes"
    );
    out
}

/// Figure 7: accuracy per Spider hardness level, per system and data
/// model, with bucket counts.
pub fn figure7(runs: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7: Execution accuracy per Spider hardness level\n\
         (bucket counts in parentheses)"
    );
    for run in runs {
        let b = by_hardness(run);
        let mut line = format!("{:<8}{:<18}", run.model.label(), run.system.name());
        for (h, bucket) in b {
            let _ = write!(
                line,
                " {}:{:>6}({:>2})",
                h.label(),
                pct(bucket.accuracy()),
                bucket.count
            );
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Figure 8: accuracy per query characteristic bucket {0, 1, ≥2}.
pub fn figure8(runs: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: Execution accuracy per query characteristic\n\
         (buckets 0 / 1 / ≥2, counts in parentheses)"
    );
    for ch in Characteristic::ALL {
        let _ = writeln!(out, "-- {}", ch.label());
        for run in runs {
            let b = by_characteristic(run, ch);
            let mut line = format!("{:<8}{:<18}", run.model.label(), run.system.name());
            for (i, bucket) in b.iter().enumerate() {
                let label = match i {
                    0 => "0",
                    1 => "1",
                    _ => ">=2",
                };
                let _ = write!(
                    line,
                    " {label}:{:>6}({:>3})",
                    pct(bucket.accuracy()),
                    bucket.count
                );
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// Error analysis: how each system fails — wrong results, unexecutable
/// SQL, or no SQL at all (the deployment's ~11% generation failures).
pub fn error_analysis(runs: &[RunResult]) -> String {
    use crate::metric::ExOutcome;
    let mut out = String::new();
    let _ = writeln!(out, "Error analysis (share of test questions)");
    let _ = writeln!(
        out,
        "{:<8}{:<18}{:>10}{:>10}{:>12}{:>10}",
        "Model", "System", "correct", "wrong", "exec-error", "no-SQL"
    );
    for run in runs {
        let total = run.items.len().max(1) as f64;
        let share = |o: ExOutcome| {
            let n = run.items.iter().filter(|i| i.outcome == o).count();
            format!("{:.1}%", 100.0 * n as f64 / total)
        };
        let _ = writeln!(
            out,
            "{:<8}{:<18}{:>10}{:>10}{:>12}{:>10}",
            run.model.label(),
            run.system.name(),
            share(ExOutcome::Correct),
            share(ExOutcome::WrongResult),
            share(ExOutcome::ExecError),
            share(ExOutcome::NoSql)
        );
    }
    out
}

/// Failure breakdown under governed execution: per-[`FailureKind`]
/// counts and shares across one or more runs, plus each run's EX. Rows
/// cover the whole taxonomy (zero counts included) so reports from
/// different fault rates align line-for-line.
pub fn failure_breakdown(runs: &[RunResult]) -> String {
    use crate::metric::FailureKind;
    let mut out = String::new();
    let _ = writeln!(out, "Failure breakdown (graceful degradation)");
    let total: usize = runs.iter().map(|r| r.items.len()).sum();
    let mut header = format!("{:<8}{:<18}{:>8}", "Model", "System", "EX");
    for kind in FailureKind::ALL {
        let _ = write!(header, "{:>16}", kind.name());
    }
    let _ = writeln!(out, "{header}");
    for run in runs {
        // An empty run has no accuracy; say so instead of scoring it 0.
        let ex = if run.items.is_empty() {
            "n/a".to_string()
        } else {
            pct(run.accuracy())
        };
        let mut line = format!("{:<8}{:<18}{:>8}", run.model.label(), run.system.name(), ex);
        for (_, n) in run.failure_counts() {
            let _ = write!(line, "{n:>16}");
        }
        let _ = writeln!(out, "{line}");
    }
    let failed: usize = runs
        .iter()
        .flat_map(|r| &r.items)
        .filter(|i| i.failure.is_some())
        .count();
    let _ = writeln!(
        out,
        "{total} items total, {failed} classified failures ({})",
        pct_of(failed, total)
    );
    out
}

/// Convenience: runs the whole grid and renders every report.
pub fn full_report(setup: &EvalSetup) -> String {
    let mut out = String::new();
    out.push_str(&table1(setup));
    out.push('\n');
    out.push_str(&table2(setup));
    out.push('\n');
    out.push_str(&table3(setup));
    out.push('\n');
    out.push_str(&table4());
    out.push('\n');
    let t5 = run_finetuned_grid(setup, &[0, 100, 200, 300]);
    out.push_str(&table5(&t5));
    out.push('\n');
    let t6 = run_fewshot_grid(setup);
    out.push_str(&table6(&t6));
    out.push('\n');
    let t7 = run_latency(setup);
    out.push_str(&table7(&t7));
    out.push('\n');
    out.push_str(&table8(setup));
    out.push('\n');
    // Figures use the max-budget runs (300 train / 30 and 8 shots).
    let mut fig_runs: Vec<RunResult> = t5.into_iter().filter(|r| r.budget.size() == 300).collect();
    for f in t6 {
        if (f.system == SystemKind::Gpt35 && f.shots == 30)
            || (f.system == SystemKind::Llama2 && f.shots == 8)
        {
            fig_runs.push(f.last_run);
        }
    }
    fig_runs.sort_by_key(|r| (r.model, r.system));
    out.push_str(&figure7(&fig_runs));
    out.push('\n');
    out.push_str(&figure8(&fig_runs));
    out.push('\n');
    out.push_str(&error_analysis(&fig_runs));
    out.push('\n');
    out.push_str(&failure_breakdown(&fig_runs));
    out.push('\n');
    out.push_str(&crate::forensics::forensics_report(setup, &fig_runs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn setup() -> &'static EvalSetup {
        static SETUP: OnceLock<EvalSetup> = OnceLock::new();
        SETUP.get_or_init(|| EvalSetup::small(11))
    }

    #[test]
    fn pct_renders_non_finite_as_na() {
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(pct(f64::NAN), "n/a");
        assert_eq!(pct(f64::INFINITY), "n/a");
        assert_eq!(pct_of(0, 0), "n/a");
        assert_eq!(pct_of(1, 4), "25.00%");
    }

    #[test]
    fn failure_breakdown_is_explicit_about_empty_runs() {
        use textosql::{Budget, SystemKind};
        let empty = RunResult {
            system: SystemKind::Gpt35,
            model: DataModel::V1,
            budget: Budget::FewShot(0),
            items: Vec::new(),
        };
        let t = failure_breakdown(&[empty]);
        assert!(t.contains("n/a"), "{t}");
        assert!(!t.contains("0.00%"), "no fabricated zero share: {t}");
        assert!(
            t.contains("0 items total, 0 classified failures (n/a)"),
            "{t}"
        );
    }

    #[test]
    fn table6_marks_single_fold_cells_instead_of_zero_spread() {
        use textosql::{Budget, SystemKind};
        let run = |system| RunResult {
            system,
            model: DataModel::V1,
            budget: Budget::FewShot(10),
            items: Vec::new(),
        };
        let folded = |system, accs: Vec<f64>| FoldedResult {
            system,
            model: DataModel::V1,
            shots: 10,
            fold_accuracies: accs,
            last_run: run(system),
        };
        let t = table6(&[
            folded(SystemKind::Gpt35, vec![0.4]),
            folded(SystemKind::Llama2, vec![0.2, 0.3]),
        ]);
        assert!(t.contains("40.00% (n=1)"), "{t}");
        assert!(
            !t.contains("(±0.00%)"),
            "single fold must not claim zero spread: {t}"
        );
        assert!(t.contains("25.00% (±5.00%)"), "{t}");
        let none = table6(&[
            folded(SystemKind::Gpt35, Vec::new()),
            folded(SystemKind::Llama2, Vec::new()),
        ]);
        assert!(none.contains("n/a"), "{none}");
    }

    #[test]
    fn table1_contains_paper_rows() {
        let t = table1(setup());
        assert!(t.contains("#NL questions issued"));
        assert!(t.contains("5900"));
    }

    #[test]
    fn table2_reports_structure() {
        let t = table2(setup());
        assert!(t.contains("#Tables"));
        assert!(t.contains("13"));
        assert!(t.contains("16"));
        assert!(t.contains("15"));
    }

    #[test]
    fn table3_has_all_characteristic_rows() {
        let t = table3(setup());
        for row in [
            "#Joins",
            "#Projections",
            "#Filters",
            "#Aggregations",
            "#Set Operations",
            "#Subqueries",
            "Mean Hardness",
            "Mean Query Length",
        ] {
            assert!(t.contains(row), "missing {row}\n{t}");
        }
    }

    #[test]
    fn table4_is_static_and_complete() {
        let t = table4();
        assert!(t.contains("148M"));
        assert!(t.contains("175B"));
        assert!(t.contains("Picard"));
        assert!(t.contains("IR to SQL"));
    }

    #[test]
    fn table8_has_computed_footballdb_row() {
        let t = table8(setup());
        assert!(t.contains("FootballDB"));
        assert!(t.contains("SPIDER"));
        assert!(t.contains("(3)"));
    }

    #[test]
    fn error_analysis_shares_sum_to_one() {
        let s = setup();
        let runs = crate::experiment::run_finetuned_grid(s, &[100]);
        let text = error_analysis(&runs);
        assert!(text.contains("no-SQL"));
        // Parse the first data row and check the shares sum to ~100%.
        let row = text.lines().nth(2).unwrap();
        let sum: f64 = row
            .split_whitespace()
            .filter(|t| t.ends_with('%'))
            .map(|t| t.trim_end_matches('%').parse::<f64>().unwrap())
            .sum();
        assert!((99.0..101.0).contains(&sum), "shares sum to {sum}: {row}");
    }

    #[test]
    fn failure_breakdown_covers_the_taxonomy() {
        use crate::experiment::Governor;
        use crate::metric::FailureKind;
        use footballdb::DataModel;
        use textosql::{Budget, FaultPlan, SystemKind};
        let s = setup();
        let gov = Governor {
            fault_plan: Some(FaultPlan::new(5, 0.4)),
            ..Governor::default()
        };
        let run = crate::experiment::run_config_governed(
            s,
            SystemKind::Gpt35,
            DataModel::V1,
            Budget::FewShot(10),
            &s.benchmark.train[..10],
            "breakdown-test",
            &gov,
        );
        let text = failure_breakdown(std::slice::from_ref(&run));
        for kind in FailureKind::ALL {
            assert!(text.contains(kind.name()), "missing column {kind}\n{text}");
        }
        // 40% fault rate must classify at least one failure.
        assert!(run.items.iter().any(|i| i.failure.is_some()));
        assert!(text.contains("classified failures"));
    }

    #[test]
    fn figure_renderers_produce_buckets() {
        let s = setup();
        let runs = crate::experiment::run_finetuned_grid(s, &[100]);
        let f7 = figure7(&runs);
        assert!(f7.contains("easy"));
        assert!(f7.contains("extra"));
        let f8 = figure8(&runs);
        assert!(f8.contains("#set ops"));
        assert!(f8.contains(">=2"));
    }
}
