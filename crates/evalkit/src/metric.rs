//! Execution accuracy (EX / result matching).
//!
//! The paper evaluates with *exact execution matching*: a prediction is
//! correct iff executing it yields the same results as executing the
//! gold query (Section 6.1, "Evaluation Metrics"). Component-matching
//! test suites could not even parse parts of the corpus, which is why EX
//! is the metric of record.
//!
//! Result comparison delegates to [`sqlengine::ResultSet::matches`],
//! which compares floats by the canonical normalized-f64 key from
//! `sqlengine`'s value layer rather than a pairwise epsilon. EX therefore
//! tolerates fold-order float noise (an `avg` computed under different
//! join orders or cache states) without ever becoming intransitive; the
//! conformance harness holds this layer to the same key.

use sqlengine::{execute_sql, Database, EngineError, ExecBudget, QueryCache, ResultSet};
use std::sync::Arc;

/// Outcome of evaluating one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExOutcome {
    /// Executed and matched the gold results.
    Correct,
    /// Executed but produced different results.
    WrongResult,
    /// The predicted SQL failed to parse or execute.
    ExecError,
    /// The system produced no SQL.
    NoSql,
}

impl ExOutcome {
    pub fn is_correct(self) -> bool {
        self == ExOutcome::Correct
    }
}

/// The graceful-degradation failure taxonomy: every per-query outcome
/// that is not a correct result gets one of these labels, feeding EX as
/// 0 and the failure-breakdown table in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The system produced no SQL at all.
    NoSql,
    /// A transient provider error exhausted every retry.
    ProviderError,
    /// The evaluation worker panicked; the query was isolated, not fatal.
    Panic,
    /// The predicted SQL did not parse.
    ParseError,
    /// The predicted SQL referenced an unknown or ambiguous identifier
    /// (the wrong-schema class).
    UnknownIdentifier,
    /// Execution aborted by the fuel budget (runaway query).
    BudgetExceeded,
    /// Any other execution error (type errors, cardinality, …).
    ExecError,
    /// Executed fine but produced the wrong results.
    WrongResult,
}

impl FailureKind {
    pub const ALL: [FailureKind; 8] = [
        FailureKind::NoSql,
        FailureKind::ProviderError,
        FailureKind::Panic,
        FailureKind::ParseError,
        FailureKind::UnknownIdentifier,
        FailureKind::BudgetExceeded,
        FailureKind::ExecError,
        FailureKind::WrongResult,
    ];

    /// Stable snake_case label used in reports and BENCH JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::NoSql => "no_sql",
            FailureKind::ProviderError => "provider_error",
            FailureKind::Panic => "panic",
            FailureKind::ParseError => "parse_error",
            FailureKind::UnknownIdentifier => "unknown_identifier",
            FailureKind::BudgetExceeded => "budget_exceeded",
            FailureKind::ExecError => "exec_error",
            FailureKind::WrongResult => "wrong_result",
        }
    }

    /// The coarse [`ExOutcome`] this failure feeds into (EX scores 0
    /// either way; the distinction keeps legacy breakdowns meaningful).
    pub fn as_outcome(self) -> ExOutcome {
        match self {
            FailureKind::NoSql | FailureKind::ProviderError => ExOutcome::NoSql,
            FailureKind::WrongResult => ExOutcome::WrongResult,
            _ => ExOutcome::ExecError,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps an engine error to its failure class.
pub fn classify_engine_error(e: &EngineError) -> FailureKind {
    match e {
        EngineError::Parse(_) => FailureKind::ParseError,
        EngineError::UnknownTable(_)
        | EngineError::UnknownColumn(_)
        | EngineError::AmbiguousColumn(_) => FailureKind::UnknownIdentifier,
        EngineError::BudgetExceeded { .. } => FailureKind::BudgetExceeded,
        _ => FailureKind::ExecError,
    }
}

/// A per-query execution outcome under graceful degradation: either the
/// materialized results or a classified failure — never a crash.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    Ok(Arc<ResultSet>),
    Classified(FailureKind),
}

/// Executes one prediction through the cache under a fuel budget and
/// classifies whatever happens.
pub fn execute_classified(
    db: &Database,
    cache: &QueryCache,
    budget: &ExecBudget,
    sql: Option<&str>,
) -> QueryOutcome {
    match sql {
        None => QueryOutcome::Classified(FailureKind::NoSql),
        Some(sql) => match cache.execute_budgeted(db, sql, budget) {
            Ok(rs) => QueryOutcome::Ok(rs),
            Err(e) => QueryOutcome::Classified(classify_engine_error(&e)),
        },
    }
}

/// Evaluates a prediction against gold SQL by execution matching.
///
/// A gold query that itself fails to execute is a labeling bug; we
/// panic loudly rather than silently scoring it.
pub fn execution_match(db: &Database, gold_sql: &str, predicted: Option<&str>) -> ExOutcome {
    let gold = execute_sql(db, gold_sql)
        .unwrap_or_else(|e| panic!("gold SQL failed to execute: {e}\n{gold_sql}"));
    match predicted {
        None => ExOutcome::NoSql,
        Some(sql) => match execute_sql(db, sql) {
            Ok(rs) => {
                if rs.matches(&gold) {
                    ExOutcome::Correct
                } else {
                    ExOutcome::WrongResult
                }
            }
            Err(_) => ExOutcome::ExecError,
        },
    }
}

/// [`execution_match`] with result memoization.
///
/// Both the gold and the predicted query are executed through `cache`,
/// so a gold query shared by every configuration of one data model — or
/// a predicted query repeated across configurations — runs once.
/// `execute_sql` is a pure function of `(db, sql)`, making the cached
/// outcome identical to the uncached one.
pub fn execution_match_cached(
    db: &Database,
    cache: &QueryCache,
    gold_sql: &str,
    predicted: Option<&str>,
) -> ExOutcome {
    let gold = cache
        .execute_cached(db, gold_sql)
        .unwrap_or_else(|e| panic!("gold SQL failed to execute: {e}\n{gold_sql}"));
    match predicted {
        None => ExOutcome::NoSql,
        Some(sql) => match cache.execute_cached(db, sql) {
            Ok(rs) => {
                if rs.matches(&gold) {
                    ExOutcome::Correct
                } else {
                    ExOutcome::WrongResult
                }
            }
            Err(_) => ExOutcome::ExecError,
        },
    }
}

/// [`execution_match_cached`] with graceful degradation: the prediction
/// runs under `budget` and every non-correct outcome carries a
/// [`FailureKind`]. The gold query stays *unbudgeted* — a gold failure
/// is a labeling bug and still panics loudly; only predicted SQL is
/// treated as untrusted input that may run away.
pub fn execution_match_governed(
    db: &Database,
    cache: &QueryCache,
    budget: &ExecBudget,
    gold_sql: &str,
    predicted: Option<&str>,
) -> (ExOutcome, Option<FailureKind>) {
    let gold = cache
        .execute_cached(db, gold_sql)
        .unwrap_or_else(|e| panic!("gold SQL failed to execute: {e}\n{gold_sql}"));
    match execute_classified(db, cache, budget, predicted) {
        QueryOutcome::Ok(rs) => {
            if rs.matches(&gold) {
                (ExOutcome::Correct, None)
            } else {
                (ExOutcome::WrongResult, Some(FailureKind::WrongResult))
            }
        }
        QueryOutcome::Classified(kind) => (kind.as_outcome(), Some(kind)),
    }
}

/// Fraction of correct outcomes.
pub fn accuracy(outcomes: &[ExOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.is_correct()).count() as f64 / outcomes.len() as f64
}

/// Component-level comparison of two queries (extension).
///
/// The paper could not use the Spider test-suite evaluation because its
/// parser rejects parts of the FootballDB corpus; our own parser covers
/// it, so we additionally provide the component-matching metric for
/// error analysis: per-clause agreement between prediction and gold,
/// order-insensitive and alias-insensitive where SQL semantics allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentMatch {
    pub tables: bool,
    pub projections: bool,
    pub filters: bool,
    pub group_by: bool,
    pub order_by: bool,
    pub limit: bool,
    pub set_shape: bool,
}

impl ComponentMatch {
    /// Derives the per-component verdicts from a canonical clause diff:
    /// a component agrees exactly when no diff class touching it is
    /// present. `HAVING` divergences are folded into the `group_by`
    /// component (they disagree about the same grouping semantics);
    /// join-edge divergences into `tables` (the FROM graph).
    pub fn from_diff(d: &sqlkit::ClauseDiff) -> ComponentMatch {
        use sqlkit::DiffClass as C;
        let none_of = |classes: &[C]| !classes.iter().any(|&c| d.has(c));
        ComponentMatch {
            tables: none_of(&[C::MissingTable, C::ExtraTable, C::WrongJoinPath]),
            projections: none_of(&[
                C::MissingProjection,
                C::ExtraProjection,
                C::WrongAggregate,
                C::WrongDistinct,
            ]),
            filters: none_of(&[
                C::MissingPredicate,
                C::ExtraPredicate,
                C::ValueLinkingMiss,
                C::WrongOperator,
            ]),
            group_by: none_of(&[C::MissingGroupKey, C::ExtraGroupKey, C::WrongHaving]),
            order_by: none_of(&[C::WrongOrderBy]),
            limit: none_of(&[C::WrongLimit]),
            set_shape: none_of(&[C::WrongSetShape]),
        }
    }

    /// All components agree (exact component matching).
    pub fn exact(&self) -> bool {
        self.tables
            && self.projections
            && self.filters
            && self.group_by
            && self.order_by
            && self.limit
            && self.set_shape
    }

    /// Number of agreeing components (0–7).
    pub fn score(&self) -> usize {
        [
            self.tables,
            self.projections,
            self.filters,
            self.group_by,
            self.order_by,
            self.limit,
            self.set_shape,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

/// Compares gold and predicted SQL clause by clause. Returns `None` when
/// either side fails to parse.
///
/// Computed from the canonical clause diff ([`sqlkit::diff_sql`]), so
/// component matching and the forensics fingerprints can never disagree.
/// The diff's canonicalization subsumes — and fixes — the old ad-hoc
/// textual dealiasing, which rewrote `"{binding}."` substrings in the
/// rendered SQL: that corrupted string literals containing an alias
/// prefix and never reconciled qualified vs bare column styles (see
/// `component_match_reconciles_qualification_styles`).
pub fn component_match(gold_sql: &str, predicted_sql: &str) -> Option<ComponentMatch> {
    Some(ComponentMatch::from_diff(&sqlkit::diff_sql(
        gold_sql,
        predicted_sql,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::{Catalog, DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new(Catalog::new(vec![TableSchema::new("t")
            .column("a", DataType::Int)
            .column("b", DataType::Text)
            .pk(&["a"])]));
        db.insert("t", vec![Value::Int(1), Value::text("x")])
            .unwrap();
        db.insert("t", vec![Value::Int(2), Value::text("y")])
            .unwrap();
        db
    }

    #[test]
    fn governed_match_classifies_every_failure_class() {
        let db = db();
        let cache = QueryCache::new();
        let budget = ExecBudget::default();
        let gold = "SELECT a FROM t WHERE b = 'x'";
        let case = |pred: Option<&str>| execution_match_governed(&db, &cache, &budget, gold, pred);
        assert_eq!(
            case(Some("SELECT a FROM t WHERE a < 2")),
            (ExOutcome::Correct, None)
        );
        assert_eq!(
            case(Some("SELECT a FROM t")),
            (ExOutcome::WrongResult, Some(FailureKind::WrongResult))
        );
        assert_eq!(case(None), (ExOutcome::NoSql, Some(FailureKind::NoSql)));
        assert_eq!(
            case(Some("SELECT a FROM t WHERE AND")),
            (ExOutcome::ExecError, Some(FailureKind::ParseError))
        );
        assert_eq!(
            case(Some("SELECT revenue FROM warehouse_fact")),
            (ExOutcome::ExecError, Some(FailureKind::UnknownIdentifier))
        );
        // A one-step budget turns even the gold text into a budget trip —
        // and the gold side itself must stay unbudgeted.
        let starved = ExecBudget::UNLIMITED.with_max_steps(1);
        assert_eq!(
            execution_match_governed(&db, &cache, &starved, gold, Some("SELECT a, b FROM t")),
            (ExOutcome::ExecError, Some(FailureKind::BudgetExceeded))
        );
    }

    #[test]
    fn classify_covers_engine_error_space() {
        assert_eq!(
            classify_engine_error(&EngineError::UnknownTable("x".into())),
            FailureKind::UnknownIdentifier
        );
        assert_eq!(
            classify_engine_error(&EngineError::Eval("bad".into())),
            FailureKind::ExecError
        );
        assert_eq!(
            classify_engine_error(&EngineError::BudgetExceeded {
                stage: "join",
                spent: 1
            }),
            FailureKind::BudgetExceeded
        );
    }

    #[test]
    fn equivalent_formulations_match() {
        let db = db();
        let out = execution_match(
            &db,
            "SELECT a FROM t WHERE b = 'x'",
            Some("SELECT a FROM t WHERE a < 2"),
        );
        assert_eq!(out, ExOutcome::Correct);
    }

    #[test]
    fn different_results_are_wrong() {
        let db = db();
        let out = execution_match(
            &db,
            "SELECT a FROM t WHERE b = 'x'",
            Some("SELECT a FROM t"),
        );
        assert_eq!(out, ExOutcome::WrongResult);
    }

    #[test]
    fn float_fold_noise_still_matches() {
        // `0.1 + 0.2` evaluates to 0.30000000000000004; EX must treat it
        // as equal to the literal 0.3 via the canonical float key, not
        // wrong-result it on bit inequality.
        let db = db();
        let out = execution_match(
            &db,
            "SELECT 0.1 + 0.2 FROM t WHERE a = 1",
            Some("SELECT 0.3 FROM t WHERE a = 1"),
        );
        assert_eq!(out, ExOutcome::Correct);
    }

    #[test]
    fn invalid_sql_is_exec_error() {
        let db = db();
        let out = execution_match(&db, "SELECT a FROM t", Some("SELECT nope FROM t"));
        assert_eq!(out, ExOutcome::ExecError);
        let out = execution_match(&db, "SELECT a FROM t", Some("garbage"));
        assert_eq!(out, ExOutcome::ExecError);
    }

    #[test]
    fn missing_sql_is_no_sql() {
        let db = db();
        assert_eq!(
            execution_match(&db, "SELECT a FROM t", None),
            ExOutcome::NoSql
        );
    }

    #[test]
    #[should_panic(expected = "gold SQL failed")]
    fn broken_gold_panics() {
        let db = db();
        execution_match(&db, "SELECT broken FROM t", Some("SELECT a FROM t"));
    }

    #[test]
    fn accuracy_fraction() {
        use ExOutcome::*;
        assert_eq!(accuracy(&[Correct, WrongResult, Correct, NoSql]), 0.5);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn component_match_identical_queries() {
        let sql = "SELECT a FROM t WHERE a = 1 AND b = 2 ORDER BY a LIMIT 3";
        let m = component_match(sql, sql).unwrap();
        assert!(m.exact());
        assert_eq!(m.score(), 7);
    }

    #[test]
    fn component_match_is_alias_insensitive() {
        let gold = "SELECT T1.a FROM t AS T1 WHERE T1.b = 2";
        let pred = "SELECT x.a FROM t AS x WHERE x.b = 2";
        let m = component_match(gold, pred).unwrap();
        assert!(m.exact(), "{m:?}");
    }

    #[test]
    fn component_match_is_conjunct_order_insensitive() {
        let gold = "SELECT a FROM t WHERE a = 1 AND b = 2";
        let pred = "SELECT a FROM t WHERE b = 2 AND a = 1";
        assert!(component_match(gold, pred).unwrap().filters);
    }

    #[test]
    fn component_match_detects_clause_differences() {
        let gold = "SELECT a FROM t WHERE a = 1 ORDER BY a LIMIT 3";
        let pred = "SELECT b FROM u WHERE a = 2 ORDER BY a DESC LIMIT 4";
        let m = component_match(gold, pred).unwrap();
        assert!(!m.tables);
        assert!(!m.projections);
        assert!(!m.filters);
        assert!(!m.order_by);
        assert!(!m.limit);
        assert!(m.group_by, "both have empty GROUP BY");
        assert!(m.set_shape);
        assert_eq!(m.score(), 2);
    }

    #[test]
    fn component_match_checks_set_shape() {
        let gold = "SELECT a FROM t UNION SELECT a FROM u";
        let pred = "SELECT a FROM t";
        let m = component_match(gold, pred).unwrap();
        assert!(!m.set_shape);
    }

    #[test]
    fn component_match_none_on_parse_failure() {
        assert!(component_match("SELECT a FROM t", "garbage").is_none());
    }

    /// Regression for a pair the old ad-hoc comparison misjudged: the
    /// textual dealiasing rewrote `T1.` → `t.` but left the bare style
    /// alone, so `t.a` vs `a` (and `t.b = 2` vs `b = 2`) read as
    /// different projections/filters even though the queries are
    /// identical. The canonical clause diff resolves both to the same
    /// unqualified form. It also no longer rewrites alias prefixes
    /// *inside string literals* (`'T1.x'` used to become `'t.x'`).
    #[test]
    fn component_match_reconciles_qualification_styles() {
        let gold = "SELECT a FROM t WHERE b = 2";
        let pred = "SELECT T1.a FROM t AS T1 WHERE T1.b = 2";
        let m = component_match(gold, pred).unwrap();
        assert!(m.exact(), "previously misjudged pair: {m:?}");

        // Literal values must stay out of identifier canonicalization:
        // these differ only in a string literal mentioning the alias.
        let g2 = "SELECT a FROM t AS T1 WHERE T1.b = 'T1.x'";
        let p2 = "SELECT a FROM t AS T1 WHERE T1.b = 't.x'";
        let m2 = component_match(g2, p2).unwrap();
        assert!(!m2.filters, "literal difference must stay visible: {m2:?}");
    }

    /// Component matching is now a projection of the clause diff, so the
    /// two layers cannot disagree on trivially reordered predicates.
    #[test]
    fn component_match_agrees_with_clause_diff() {
        let gold = "SELECT a FROM t WHERE a = 1 AND b = 2 GROUP BY a";
        let pred = "SELECT a FROM t WHERE b = 2 AND a = 1 GROUP BY a";
        let d = sqlkit::diff_sql(gold, pred).unwrap();
        assert!(d.is_empty(), "{d:?}");
        assert!(component_match(gold, pred).unwrap().exact());
    }
}
