//! Input-token-budget tradeoff experiment.
//!
//! The paper's conclusion notes that *"reducing the maximum input token
//! size has the potential to meet the inference time requirements.
//! Nevertheless, this reduction can be accompanied by a significant
//! decrease in the execution accuracy ... due to the lossy input
//! information."* This module makes that tradeoff concrete: the schema
//! encoding is truncated to a token budget (dropping whole tables from
//! the end of the encoding, as a prompt truncation would), which speeds
//! up inference proportionally but makes every question whose gold query
//! touches a dropped table unanswerable.

use crate::experiment::EvalSetup;
use footballdb::DataModel;
use sqlkit::ast::TableRef;
use textosql::schema_encode::{approx_tokens, encode_schema, EncodeOptions};
use textosql::{cost_params, success_probabilities, Budget, SystemKind};
use xrng::Rng;

/// One point of the tradeoff curve.
#[derive(Debug, Clone, Copy)]
pub struct TradeoffPoint {
    /// Input-token budget for the schema encoding.
    pub max_input_tokens: usize,
    /// Tables that still fit the encoding.
    pub tables_retained: usize,
    /// Test questions whose gold tables all fit.
    pub answerable: usize,
    /// Estimated execution accuracy under the truncation.
    pub accuracy: f64,
    /// Mean inference seconds per query under the reduced input.
    pub latency: f64,
}

/// Tables whose encoding fits within `budget` tokens, in catalog order
/// (prefix truncation, as prompt cutoffs behave).
fn retained_tables(model: DataModel, budget: usize) -> Vec<String> {
    let catalog = model.catalog();
    let mut used = 0usize;
    let mut out = Vec::new();
    for t in &catalog.tables {
        let single = sqlengine::Catalog::new(vec![t.clone()]);
        let tokens = approx_tokens(&encode_schema(&single, None, EncodeOptions::WITH_KEYS));
        if used + tokens > budget {
            break;
        }
        used += tokens;
        out.push(t.name.clone());
    }
    out
}

/// Sweeps input-token budgets for one system and data model.
pub fn token_budget_sweep(
    setup: &EvalSetup,
    system: SystemKind,
    model: DataModel,
    budgets: &[usize],
) -> Vec<TradeoffPoint> {
    let profiles = setup.profiles(model);
    let full_probs = success_probabilities(system, model, Budget::FineTuned(300), profiles);
    let mut rng = Rng::new(setup.seed).fork("tradeoff");

    budgets
        .iter()
        .map(|&budget| {
            let tables = retained_tables(model, budget);
            // A question survives truncation iff every table its gold
            // query references is still encoded.
            let mut answerable = 0usize;
            let mut expected_correct = 0.0;
            for (i, item) in setup.benchmark.test.iter().enumerate() {
                let gold = item.sql(model);
                let fits = match sqlkit::parse_query(gold) {
                    Ok(q) => {
                        let mut all_in = true;
                        q.visit_selects(&mut |s| {
                            for t in s.table_refs() {
                                if let TableRef::Named { name, .. } = t {
                                    if !tables.iter().any(|x| x.eq_ignore_ascii_case(name)) {
                                        all_in = false;
                                    }
                                }
                            }
                        });
                        all_in
                    }
                    Err(_) => false,
                };
                if fits {
                    answerable += 1;
                    expected_correct += full_probs[i];
                }
            }
            let n = setup.benchmark.test.len().max(1);
            // Latency scales with the input the encoder must read: use
            // the system's per-token decode cost plus an input-read term
            // proportional to the budget.
            let p = cost_params(system);
            let out_tokens = 60.0;
            let input_fraction = budget as f64 / 1024.0;
            let latency = (p.base + p.per_token * out_tokens)
                * (0.4 + 0.6 * input_fraction.min(1.0))
                * rng.normal_with(1.0, 0.02).abs();
            TradeoffPoint {
                max_input_tokens: budget,
                tables_retained: tables.len(),
                answerable,
                accuracy: expected_correct / n as f64,
                latency,
            }
        })
        .collect()
}

/// Renders the tradeoff table.
pub fn tradeoff_report(setup: &EvalSetup) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Input-token budget tradeoff (T5-Picard_Keys, v3, 300 train):"
    );
    let _ = writeln!(
        out,
        "{:>8}{:>10}{:>14}{:>12}{:>12}",
        "tokens", "tables", "answerable", "accuracy", "latency"
    );
    for p in token_budget_sweep(
        setup,
        SystemKind::T5PicardKeys,
        DataModel::V3,
        &[128, 256, 512, 768, 1024],
    ) {
        let _ = writeln!(
            out,
            "{:>8}{:>10}{:>14}{:>11.1}%{:>11.1}s",
            p.max_input_tokens,
            p.tables_retained,
            p.answerable,
            p.accuracy * 100.0,
            p.latency
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn setup() -> &'static EvalSetup {
        static SETUP: OnceLock<EvalSetup> = OnceLock::new();
        SETUP.get_or_init(|| EvalSetup::small(11))
    }

    #[test]
    fn bigger_budgets_retain_more_tables() {
        let a = retained_tables(DataModel::V3, 128);
        let b = retained_tables(DataModel::V3, 1024);
        assert!(a.len() < b.len());
        assert_eq!(b.len(), 15, "1K tokens fits the whole v3 schema");
    }

    #[test]
    fn sweep_is_monotone_in_both_directions() {
        let s = setup();
        let points = token_budget_sweep(
            s,
            SystemKind::T5PicardKeys,
            DataModel::V3,
            &[128, 512, 1024],
        );
        assert!(points
            .windows(2)
            .all(|w| w[0].accuracy <= w[1].accuracy + 1e-9));
        assert!(points
            .windows(2)
            .all(|w| w[0].latency <= w[1].latency * 1.1));
        // Severe truncation must cost accuracy.
        assert!(points[0].accuracy < points[2].accuracy, "{points:?}");
    }

    #[test]
    fn report_renders() {
        let r = tradeoff_report(setup());
        assert!(r.contains("tokens"));
        assert!(r.contains("answerable"));
    }
}
