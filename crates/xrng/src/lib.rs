//! Deterministic pseudo-random number generation for reproducible
//! experiments.
//!
//! Every stochastic component of the reproduction (dataset synthesis,
//! question generation, sampling, the system error models) draws from this
//! crate so that a fixed seed regenerates byte-identical datasets and
//! experiment results across runs, platforms, and dependency upgrades.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors. Independent substreams can be
//! derived from string labels via [`Rng::fork`], which keeps unrelated
//! experiment stages statistically decoupled even when code between them is
//! reordered.

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

/// SplitMix64 step used for seeding and label hashing.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng { state }
    }

    /// Derives an independent substream keyed by `label`.
    ///
    /// The derived stream depends on the parent's current state but not on
    /// values produced after the fork, so sibling forks taken from the same
    /// parent state are mutually independent and order-insensitive.
    pub fn fork(&self, label: &str) -> Rng {
        let mut h = self.state[0] ^ self.state[2].rotate_left(17);
        for b in label.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01B3);
            h ^= h >> 29;
        }
        Rng::new(h)
    }

    /// Returns the next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.f64();
            if u > f64::EPSILON {
                let v = self.f64();
                let r = (-2.0 * u.ln()).sqrt();
                return r * (std::f64::consts::TAU * v).cos();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.index(items.len())]
    }

    /// Picks an index according to non-negative weights (at least one must
    /// be positive).
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        assert!(total > 0.0, "all weights are zero");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return i;
            }
            target -= *w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("at least one positive weight")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `min(k, n)` distinct indices from `[0, n)` in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic() {
        let parent = Rng::new(7);
        let mut f1 = parent.fork("alpha");
        let mut f2 = parent.fork("alpha");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_labels_are_independent() {
        let parent = Rng::new(7);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng::new(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..500 {
            let v = r.range_i64(-10, 10);
            assert!((-10..=10).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = Rng::new(17);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(19);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(29);
        let s = r.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
    }

    #[test]
    fn sample_indices_saturates() {
        let mut r = Rng::new(31);
        let s = r.sample_indices(5, 10);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn choose_weighted_respects_zeros() {
        let mut r = Rng::new(37);
        for _ in 0..500 {
            let i = r.choose_weighted(&[0.0, 1.0, 0.0, 2.0]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn choose_weighted_rejects_all_zero() {
        let mut r = Rng::new(41);
        r.choose_weighted(&[0.0, 0.0]);
    }
}
