//! Gold NL/SQL examples.

use footballdb::DataModel;

/// One manually-labeled-style NL/SQL pair, with gold SQL for each of the
/// three data models (the paper's 400-question sets are the same
/// questions labeled three times).
#[derive(Debug, Clone, PartialEq)]
pub struct GoldExample {
    /// Stable id within the corpus.
    pub id: usize,
    /// The natural-language question.
    pub question: String,
    /// Gold SQL per data model, indexed by [`DataModel`] order v1, v2, v3.
    pub sql: [String; 3],
    /// The generating template's topic label (used as ground-truth topic
    /// for clustering diagnostics; the real pipeline discovers topics).
    pub topic: &'static str,
}

impl GoldExample {
    /// Gold SQL for a data model.
    pub fn sql(&self, model: DataModel) -> &str {
        match model {
            DataModel::V1 => &self.sql[0],
            DataModel::V2 => &self.sql[1],
            DataModel::V3 => &self.sql[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_indexing_by_model() {
        let g = GoldExample {
            id: 0,
            question: "q".into(),
            sql: ["a".into(), "b".into(), "c".into()],
            topic: "t",
        };
        assert_eq!(g.sql(DataModel::V1), "a");
        assert_eq!(g.sql(DataModel::V2), "b");
        assert_eq!(g.sql(DataModel::V3), "c");
    }
}
