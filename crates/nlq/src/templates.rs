//! Question templates over the FootballDB domain.
//!
//! Each template produces a natural-language question (with several
//! phrasings, mirroring the linguistic variety of the live deployment)
//! and gold SQL for all three data models. The template mix is derived
//! from the question topics the paper reports users actually asked:
//! winners and runners-up, scores between two teams, player clubs and
//! coaches, leagues, top scorers, attendance, cards, and squad questions.
//!
//! The two-team templates are the set-operation drivers: in v1/v2 a
//! "Germany against Brazil" question needs a UNION over home/away role
//! assignments (Figure 4), while v3's `plays_match` answers it with a
//! single join — which is exactly why #Set Operations drops to zero in
//! Table 3.

use crate::example::GoldExample;
use footballdb::model::Domain;
use xrng::Rng;

/// A template instantiation before corpus-level dedup.
pub struct Instantiated {
    pub question: String,
    pub sql_v1: String,
    pub sql_v2: String,
    pub sql_v3: String,
    pub topic: &'static str,
}

impl Instantiated {
    pub fn into_example(self, id: usize) -> GoldExample {
        GoldExample {
            id,
            question: self.question,
            sql: [self.sql_v1, self.sql_v2, self.sql_v3],
            topic: self.topic,
        }
    }
}

type TemplateFn = fn(&Domain, &mut Rng) -> Instantiated;

/// Template registry with sampling weights (heavier topics were asked
/// more often in the deployment).
pub const TEMPLATES: &[(f64, TemplateFn)] = &[
    (9.0, who_won_cup),
    (6.0, runner_up),
    (7.0, times_won),
    (5.0, score_between),
    (2.0, host_country),
    (2.0, host_year),
    (3.0, match_count_year),
    (8.0, player_club),
    (9.0, squad_list),
    (8.0, top_scorer),
    (6.0, coach_of_team),
    (3.0, division_one_leagues),
    (6.0, red_cards_team_year),
    (5.0, highest_attendance),
    (4.0, team_appearances),
    (4.0, matches_between),
    (3.0, wins_against),
    (2.0, tallest_player),
    (4.0, player_goals),
    (3.0, stadium_of_final),
    (3.0, third_place),
    (2.0, avg_attendance),
    (2.0, most_finals),
    (2.0, best_attended_referee),
    (2.0, taller_than_average),
    (2.0, goals_scored_year),
    (4.0, final_scorers),
    (4.0, club_players),
];

/// Draws one instantiated template.
pub fn instantiate(d: &Domain, rng: &mut Rng) -> Instantiated {
    let weights: Vec<f64> = TEMPLATES.iter().map(|(w, _)| *w).collect();
    let idx = rng.choose_weighted(&weights);
    TEMPLATES[idx].1(d, rng)
}

// ---- slot pickers --------------------------------------------------------

fn year(d: &Domain, rng: &mut Rng) -> i64 {
    d.world_cups[rng.index(d.world_cups.len())].year
}

fn team(d: &Domain, rng: &mut Rng) -> String {
    d.teams[rng.index(d.teams.len())].teamname.clone()
}

fn player(d: &Domain, rng: &mut Rng) -> String {
    d.players[rng.index(d.players.len())].full_name.clone()
}

fn league_country(d: &Domain, rng: &mut Rng) -> String {
    d.leagues[rng.index(d.leagues.len())].country.clone()
}

/// An actual played match, so two-team questions have answers.
fn real_pairing(d: &Domain, rng: &mut Rng) -> (String, String, i64) {
    let m = &d.matches[rng.index(d.matches.len())];
    let cup_year = d.world_cups[(m.world_cup_id - 1) as usize].year;
    (
        d.team(m.home_team_id).teamname.clone(),
        d.team(m.away_team_id).teamname.clone(),
        cup_year,
    )
}

fn pick(rng: &mut Rng, options: &[String]) -> String {
    options[rng.index(options.len())].clone()
}

// ---- standings templates -------------------------------------------------

fn who_won_cup(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who won the world cup in {y}?"),
            format!("Which country won the {y} world cup?"),
            format!("Which team was the world cup winner in {y}?"),
            format!("{y} world cup champion"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT T2.teamname FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.winner = T2.team_id WHERE T1.year = {y}"
        ),
        sql_v2: format!(
            "SELECT T2.teamname FROM world_cup_result AS T1 \
             JOIN national_team AS T2 ON T1.team_id = T2.team_id \
             JOIN world_cup AS T3 ON T1.world_cup_id = T3.world_cup_id \
             WHERE T3.year = {y} AND T1.prize = 'winner'"
        ),
        sql_v3: format!(
            "SELECT T1.teamname FROM world_cup_result AS T1 \
             JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id \
             WHERE T2.year = {y} AND T1.winner = 'True'"
        ),
        topic: "winner",
    }
}

fn runner_up(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    // Users say "second place" / "lost in the final" ≈ 3× as often as
    // "runner-up" — the lexical problem of Section 5.2.
    let question = pick(
        rng,
        &[
            format!("Who came second in the world cup {y}?"),
            format!("Which team lost in the final in {y}?"),
            format!("Who finished second place at the {y} world cup?"),
            format!("Who was the runner-up in {y}?"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT T2.teamname FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.runner_up = T2.team_id WHERE T1.year = {y}"
        ),
        sql_v2: format!(
            "SELECT T2.teamname FROM world_cup_result AS T1 \
             JOIN national_team AS T2 ON T1.team_id = T2.team_id \
             JOIN world_cup AS T3 ON T1.world_cup_id = T3.world_cup_id \
             WHERE T3.year = {y} AND T1.prize = 'runner-up'"
        ),
        sql_v3: format!(
            "SELECT T1.teamname FROM world_cup_result AS T1 \
             JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id \
             WHERE T2.year = {y} AND T1.runner_up = 'True'"
        ),
        topic: "runner_up",
    }
}

fn third_place(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who finished third at the {y} world cup?"),
            format!("Which team won the third-place play-off in {y}?"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT T2.teamname FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.third = T2.team_id WHERE T1.year = {y}"
        ),
        sql_v2: format!(
            "SELECT T2.teamname FROM world_cup_result AS T1 \
             JOIN national_team AS T2 ON T1.team_id = T2.team_id \
             JOIN world_cup AS T3 ON T1.world_cup_id = T3.world_cup_id \
             WHERE T3.year = {y} AND T1.prize = 'third'"
        ),
        sql_v3: format!(
            "SELECT T1.teamname FROM world_cup_result AS T1 \
             JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id \
             WHERE T2.year = {y} AND T1.third = 'True'"
        ),
        topic: "third_place",
    }
}

fn times_won(d: &Domain, rng: &mut Rng) -> Instantiated {
    let t = team(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many times did {t} win the worldcup?"),
            format!("How many world cups has {t} won?"),
            format!("Number of world cup titles for {t}"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT count(*) FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.winner = T2.team_id \
             WHERE T2.teamname = '{t}'"
        ),
        sql_v2: format!(
            "SELECT count(*) FROM world_cup_result AS T1 \
             JOIN national_team AS T2 ON T1.team_id = T2.team_id \
             WHERE T2.teamname = '{t}' AND T1.prize = 'winner'"
        ),
        sql_v3: format!(
            "SELECT count(*) FROM world_cup_result AS T1 \
             JOIN national_team AS T2 ON T1.team_id = T2.team_id \
             WHERE T2.teamname = '{t}' AND T1.winner = 'True'"
        ),
        topic: "times_won",
    }
}

// ---- match / score templates ----------------------------------------------

fn score_between(d: &Domain, rng: &mut Rng) -> Instantiated {
    let (a, b, y) = real_pairing(d, rng);
    let question = pick(
        rng,
        &[
            format!("What was the score between {a} and {b} in {y}?"),
            format!("How did the match {a} against {b} end in {y}?"),
            format!("Result of {a} vs {b} at the {y} world cup"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT T1.home_team_goals, T1.away_team_goals FROM match AS T1 \
             JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
             JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
             JOIN world_cup AS T4 ON T1.world_cup_id = T4.world_cup_id \
             WHERE T2.teamname = '{a}' AND T3.teamname = '{b}' AND T4.year = {y} \
             UNION \
             SELECT T1.away_team_goals, T1.home_team_goals FROM match AS T1 \
             JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
             JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
             JOIN world_cup AS T4 ON T1.world_cup_id = T4.world_cup_id \
             WHERE T2.teamname = '{b}' AND T3.teamname = '{a}' AND T4.year = {y}"
        ),
        sql_v2: format!(
            "SELECT T2.goals, T3.goals FROM match AS T1 \
             JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
             JOIN plays_as_away AS T3 ON T1.match_id = T3.match_id \
             JOIN national_team AS T4 ON T2.team_id = T4.team_id \
             JOIN national_team AS T5 ON T3.team_id = T5.team_id \
             JOIN world_cup AS T6 ON T1.world_cup_id = T6.world_cup_id \
             WHERE T4.teamname = '{a}' AND T5.teamname = '{b}' AND T6.year = {y} \
             UNION \
             SELECT T3.goals, T2.goals FROM match AS T1 \
             JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
             JOIN plays_as_away AS T3 ON T1.match_id = T3.match_id \
             JOIN national_team AS T4 ON T2.team_id = T4.team_id \
             JOIN national_team AS T5 ON T3.team_id = T5.team_id \
             JOIN world_cup AS T6 ON T1.world_cup_id = T6.world_cup_id \
             WHERE T4.teamname = '{b}' AND T5.teamname = '{a}' AND T6.year = {y}"
        ),
        sql_v3: format!(
            "SELECT T1.goals, T1.opponent_goals FROM plays_match AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             WHERE T1.teamname = '{a}' AND T1.opponent_teamname = '{b}' AND T2.year = {y}"
        ),
        topic: "score_between",
    }
}

fn matches_between(d: &Domain, rng: &mut Rng) -> Instantiated {
    let (a, b, _) = real_pairing(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many times did {a} play against {b}?"),
            format!("How often have {a} and {b} met at world cups?"),
            format!("Number of world cup matches between {a} and {b}"),
        ],
    );
    let v1 = format!(
        "SELECT count(*) FROM match AS T1 \
         JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
         JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
         WHERE (T2.teamname = '{a}' AND T3.teamname = '{b}') \
         OR (T2.teamname = '{b}' AND T3.teamname = '{a}')"
    );
    let v2 = format!(
        "SELECT count(*) FROM match AS T1 \
         JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
         JOIN plays_as_away AS T3 ON T1.match_id = T3.match_id \
         JOIN national_team AS T4 ON T2.team_id = T4.team_id \
         JOIN national_team AS T5 ON T3.team_id = T5.team_id \
         WHERE (T4.teamname = '{a}' AND T5.teamname = '{b}') \
         OR (T4.teamname = '{b}' AND T5.teamname = '{a}')"
    );
    let v3 = format!(
        "SELECT count(*) FROM plays_match \
         WHERE teamname = '{a}' AND opponent_teamname = '{b}'"
    );
    Instantiated {
        question,
        sql_v1: v1,
        sql_v2: v2,
        sql_v3: v3,
        topic: "matches_between",
    }
}

fn wins_against(d: &Domain, rng: &mut Rng) -> Instantiated {
    let (a, b, _) = real_pairing(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many times did {a} beat {b}?"),
            format!("How often has {a} won against {b} in regular time?"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT count(*) FROM match AS T1 \
             JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
             JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
             WHERE (T2.teamname = '{a}' AND T3.teamname = '{b}' AND T1.home_team_goals > T1.away_team_goals) \
             OR (T2.teamname = '{b}' AND T3.teamname = '{a}' AND T1.away_team_goals > T1.home_team_goals)"
        ),
        sql_v2: format!(
            "SELECT count(*) FROM match AS T1 \
             JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
             JOIN plays_as_away AS T3 ON T1.match_id = T3.match_id \
             JOIN national_team AS T4 ON T2.team_id = T4.team_id \
             JOIN national_team AS T5 ON T3.team_id = T5.team_id \
             WHERE (T4.teamname = '{a}' AND T5.teamname = '{b}' AND T2.goals > T3.goals) \
             OR (T4.teamname = '{b}' AND T5.teamname = '{a}' AND T3.goals > T2.goals)"
        ),
        sql_v3: format!(
            "SELECT count(*) FROM plays_match \
             WHERE teamname = '{a}' AND opponent_teamname = '{b}' AND goals > opponent_goals"
        ),
        topic: "wins_against",
    }
}

fn match_count_year(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many matches were played at the {y} world cup?"),
            format!("Number of games in the world cup {y}"),
        ],
    );
    let joined = format!(
        "SELECT count(*) FROM match AS T1 \
         JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id WHERE T2.year = {y}"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!("SELECT count(*) FROM match WHERE year = {y}"),
        topic: "match_count",
    }
}

fn highest_attendance(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Which match had the highest attendance in {y}?"),
            format!("What was the best attended game of the {y} world cup?"),
        ],
    );
    Instantiated {
        question,
        sql_v1: format!(
            "SELECT T2.teamname, T3.teamname FROM match AS T1 \
             JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
             JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
             JOIN world_cup AS T4 ON T1.world_cup_id = T4.world_cup_id \
             WHERE T4.year = {y} \
             ORDER BY T1.attendance DESC, T2.teamname LIMIT 1"
        ),
        sql_v2: format!(
            "SELECT T4.teamname, T5.teamname FROM match AS T1 \
             JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
             JOIN plays_as_away AS T3 ON T1.match_id = T3.match_id \
             JOIN national_team AS T4 ON T2.team_id = T4.team_id \
             JOIN national_team AS T5 ON T3.team_id = T5.team_id \
             JOIN world_cup AS T6 ON T1.world_cup_id = T6.world_cup_id \
             WHERE T6.year = {y} \
             ORDER BY T1.attendance DESC, T4.teamname LIMIT 1"
        ),
        sql_v3: format!(
            "SELECT T1.teamname, T1.opponent_teamname FROM plays_match AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             WHERE T2.year = {y} AND T1.team_role = 'home' \
             ORDER BY T2.attendance DESC, T1.teamname LIMIT 1"
        ),
        topic: "attendance",
    }
}

fn avg_attendance(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("What was the average attendance at the {y} world cup?"),
            format!("Average crowd size in {y}"),
        ],
    );
    let joined = format!(
        "SELECT avg(T1.attendance) FROM match AS T1 \
         JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id WHERE T2.year = {y}"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!("SELECT avg(attendance) FROM match WHERE year = {y}"),
        topic: "avg_attendance",
    }
}

fn stadium_of_final(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("In which stadium was the {y} world cup final played?"),
            format!("Where was the final of the {y} world cup?"),
        ],
    );
    let joined = format!(
        "SELECT T2.name, T2.city FROM match AS T1 \
         JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id \
         JOIN world_cup AS T3 ON T1.world_cup_id = T3.world_cup_id \
         WHERE T3.year = {y} AND T1.round = 'Final'"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!(
            "SELECT T2.name, T2.city FROM match AS T1 \
             JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id \
             WHERE T1.year = {y} AND T1.round = 'Final'"
        ),
        topic: "stadium_final",
    }
}

fn most_finals(_d: &Domain, rng: &mut Rng) -> Instantiated {
    let question = pick(
        rng,
        &[
            "Which team reached the most world cup finals?".to_string(),
            "Who played the most finals?".to_string(),
        ],
    );
    let union_form = |hg: &str, ag: &str| {
        format!(
            "SELECT teamname FROM (\
             SELECT T2.teamname AS teamname FROM match AS T1 \
             JOIN national_team AS T2 ON T1.{hg} = T2.team_id WHERE T1.round = 'Final' \
             UNION ALL \
             SELECT T2.teamname AS teamname FROM match AS T1 \
             JOIN national_team AS T2 ON T1.{ag} = T2.team_id WHERE T1.round = 'Final') AS U \
             GROUP BY teamname ORDER BY count(*) DESC, teamname LIMIT 1"
        )
    };
    Instantiated {
        question,
        sql_v1: union_form("home_team_id", "away_team_id"),
        sql_v2: "SELECT teamname FROM (\
             SELECT T3.teamname AS teamname FROM match AS T1 \
             JOIN plays_as_home AS T2 ON T1.match_id = T2.match_id \
             JOIN national_team AS T3 ON T2.team_id = T3.team_id WHERE T1.round = 'Final' \
             UNION ALL \
             SELECT T3.teamname AS teamname FROM match AS T1 \
             JOIN plays_as_away AS T2 ON T1.match_id = T2.match_id \
             JOIN national_team AS T3 ON T2.team_id = T3.team_id WHERE T1.round = 'Final') AS U \
             GROUP BY teamname ORDER BY count(*) DESC, teamname LIMIT 1"
            .to_string(),
        sql_v3: "SELECT T1.teamname FROM plays_match AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id WHERE T2.round = 'Final' \
             GROUP BY T1.teamname ORDER BY count(*) DESC, T1.teamname LIMIT 1"
            .to_string(),
        topic: "most_finals",
    }
}

// ---- cup metadata ----------------------------------------------------------

fn host_country(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Where was the world cup in {y}?"),
            format!("Which country hosted the {y} world cup?"),
        ],
    );
    let sql = format!("SELECT host_country FROM world_cup WHERE year = {y}");
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "host",
    }
}

fn host_year(d: &Domain, rng: &mut Rng) -> Instantiated {
    let cup = &d.world_cups[rng.index(d.world_cups.len())];
    let c = cup.host_country.clone();
    let question = pick(
        rng,
        &[
            format!("When did {c} host the world cup?"),
            format!("In which years was the world cup held in {c}?"),
        ],
    );
    let sql = format!("SELECT year FROM world_cup WHERE host_country = '{c}'");
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "host_year",
    }
}

fn goals_scored_year(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many goals were scored at the {y} world cup?"),
            format!("Total goals in the world cup {y}"),
        ],
    );
    let sql = format!("SELECT goals_scored FROM world_cup WHERE year = {y}");
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "goals_year",
    }
}

// ---- player / club / coach templates ---------------------------------------

fn player_club(d: &Domain, rng: &mut Rng) -> Instantiated {
    let p = player(d, rng);
    let question = pick(
        rng,
        &[
            format!("Which club does {p} play for?"),
            format!("What is the club of {p}?"),
            format!("{p} current club"),
        ],
    );
    let sql = format!(
        "SELECT T2.name, T2.country FROM player AS T1 \
         JOIN club AS T2 ON T1.club_id = T2.club_id WHERE T1.full_name = '{p}'"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "player_club",
    }
}

fn squad_list(d: &Domain, rng: &mut Rng) -> Instantiated {
    // Pick a real (team, cup) pairing so the squad is non-empty.
    let s = &d.squads[rng.index(d.squads.len())];
    let t = d.team(s.team_id).teamname.clone();
    let y = d.world_cups[(s.world_cup_id - 1) as usize].year;
    let question = pick(
        rng,
        &[
            format!("Which players played for {t} in {y}?"),
            format!("List the {t} squad at the {y} world cup"),
            format!("Who was in the {t} team in {y}?"),
        ],
    );
    let sql = format!(
        "SELECT T3.full_name, T1.shirt_number FROM squad AS T1 \
         JOIN national_team AS T2 ON T1.team_id = T2.team_id \
         JOIN player AS T3 ON T1.player_id = T3.player_id \
         JOIN world_cup AS T4 ON T1.world_cup_id = T4.world_cup_id \
         WHERE T2.teamname = '{t}' AND T4.year = {y}"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "squad",
    }
}

fn top_scorer(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who scored the most goals at the {y} world cup?"),
            format!("Top scorer of the world cup {y}"),
        ],
    );
    let joined = format!(
        "SELECT T3.full_name, count(*) FROM goal AS T1 \
         JOIN match AS T2 ON T1.match_id = T2.match_id \
         JOIN player AS T3 ON T1.player_id = T3.player_id \
         JOIN world_cup AS T4 ON T2.world_cup_id = T4.world_cup_id \
         WHERE T4.year = {y} \
         GROUP BY T3.full_name ORDER BY count(*) DESC, T3.full_name LIMIT 1"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!(
            "SELECT T3.full_name, count(*) FROM goal AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             JOIN player AS T3 ON T1.player_id = T3.player_id \
             WHERE T2.year = {y} \
             GROUP BY T3.full_name ORDER BY count(*) DESC, T3.full_name LIMIT 1"
        ),
        topic: "top_scorer",
    }
}

fn player_goals(d: &Domain, rng: &mut Rng) -> Instantiated {
    let p = player(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many goals did {p} score at world cups?"),
            format!("World cup goals of {p}"),
        ],
    );
    let sql = format!(
        "SELECT count(*) FROM goal AS T1 \
         JOIN player AS T2 ON T1.player_id = T2.player_id WHERE T2.full_name = '{p}'"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "player_goals",
    }
}

fn coach_of_team(d: &Domain, rng: &mut Rng) -> Instantiated {
    let t = team(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who coached {t}?"),
            format!("List the coaches of the {t} national team"),
        ],
    );
    let sql = format!(
        "SELECT T1.name FROM coach AS T1 \
         JOIN national_team AS T2 ON T1.team_id = T2.team_id WHERE T2.teamname = '{t}'"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "coach",
    }
}

fn division_one_leagues(d: &Domain, rng: &mut Rng) -> Instantiated {
    let c = league_country(d, rng);
    let question = pick(
        rng,
        &[
            format!("Which league is division one in {c}?"),
            format!("What is the top league of {c}?"),
        ],
    );
    let sql = format!("SELECT name FROM league WHERE country = '{c}' AND division = 1");
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "league",
    }
}

fn red_cards_team_year(d: &Domain, rng: &mut Rng) -> Instantiated {
    let (t, _, y) = real_pairing(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many red cards did {t} get in {y}?"),
            format!("Red cards for {t} at the {y} world cup"),
        ],
    );
    let joined = format!(
        "SELECT count(*) FROM card AS T1 \
         JOIN match AS T2 ON T1.match_id = T2.match_id \
         JOIN player AS T3 ON T1.player_id = T3.player_id \
         JOIN world_cup AS T4 ON T2.world_cup_id = T4.world_cup_id \
         WHERE T3.country = '{t}' AND T4.year = {y} AND T1.card_type = 'red'"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!(
            "SELECT count(*) FROM card AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             JOIN player AS T3 ON T1.player_id = T3.player_id \
             WHERE T3.country = '{t}' AND T2.year = {y} AND T1.card_type = 'red'"
        ),
        topic: "cards",
    }
}

fn team_appearances(d: &Domain, rng: &mut Rng) -> Instantiated {
    let t = team(d, rng);
    let question = pick(
        rng,
        &[
            format!("How many world cups did {t} play in?"),
            format!("Number of world cup participations of {t}"),
        ],
    );
    let sql = format!(
        "SELECT count(DISTINCT T1.world_cup_id) FROM squad AS T1 \
         JOIN national_team AS T2 ON T1.team_id = T2.team_id WHERE T2.teamname = '{t}'"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "appearances",
    }
}

fn tallest_player(d: &Domain, rng: &mut Rng) -> Instantiated {
    let t = team(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who is the tallest player of {t}?"),
            format!("Tallest {t} player"),
        ],
    );
    let sql = format!(
        "SELECT full_name, height_cm FROM player WHERE country = '{t}' \
         ORDER BY height_cm DESC, full_name LIMIT 1"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "tallest",
    }
}

fn best_attended_referee(_d: &Domain, rng: &mut Rng) -> Instantiated {
    let question = pick(
        rng,
        &[
            "Which referee officiated the match with the highest attendance?".to_string(),
            "Who refereed the best attended world cup game?".to_string(),
        ],
    );
    let sql = "SELECT referee FROM match \
               WHERE attendance = (SELECT max(attendance) FROM match)"
        .to_string();
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "referee",
    }
}

fn taller_than_average(d: &Domain, rng: &mut Rng) -> Instantiated {
    let t = team(d, rng);
    let question = pick(
        rng,
        &[
            format!("Which {t} players are taller than the average player?"),
            format!("{t} players above average height"),
        ],
    );
    let sql = format!(
        "SELECT full_name FROM player WHERE country = '{t}' \
         AND height_cm > (SELECT avg(height_cm) FROM player)"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "tall_avg",
    }
}

fn final_scorers(d: &Domain, rng: &mut Rng) -> Instantiated {
    let y = year(d, rng);
    let question = pick(
        rng,
        &[
            format!("Who scored in the final of the {y} world cup?"),
            format!("Which players scored in the {y} final?"),
        ],
    );
    let joined = format!(
        "SELECT T3.full_name, T1.minute FROM goal AS T1 \
         JOIN match AS T2 ON T1.match_id = T2.match_id \
         JOIN player AS T3 ON T1.player_id = T3.player_id \
         JOIN world_cup AS T4 ON T2.world_cup_id = T4.world_cup_id \
         WHERE T4.year = {y} AND T2.round = 'Final'"
    );
    Instantiated {
        question,
        sql_v1: joined.clone(),
        sql_v2: joined,
        sql_v3: format!(
            "SELECT T3.full_name, T1.minute FROM goal AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             JOIN player AS T3 ON T1.player_id = T3.player_id \
             WHERE T2.year = {y} AND T2.round = 'Final'"
        ),
        topic: "final_scorers",
    }
}

fn club_players(d: &Domain, rng: &mut Rng) -> Instantiated {
    let c = d.clubs[rng.index(d.clubs.len())].name.clone();
    let question = pick(
        rng,
        &[
            format!("Which players play for {c}?"),
            format!("List the world cup players of {c}"),
        ],
    );
    let sql = format!(
        "SELECT T1.full_name, T1.position FROM player AS T1 \
         JOIN club AS T2 ON T1.club_id = T2.club_id WHERE T2.name = '{c}'"
    );
    Instantiated {
        question,
        sql_v1: sql.clone(),
        sql_v2: sql.clone(),
        sql_v3: sql,
        topic: "club_players",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::{generate, load, DataModel};
    use sqlengine::execute;

    #[test]
    fn all_templates_parse_in_all_models() {
        let d = generate(7);
        let mut rng = Rng::new(11);
        for (i, (_, f)) in TEMPLATES.iter().enumerate() {
            let inst = f(&d, &mut rng);
            for sql in [&inst.sql_v1, &inst.sql_v2, &inst.sql_v3] {
                sqlkit::parse_query(sql)
                    .unwrap_or_else(|e| panic!("template {i} ({}): {e}\n{sql}", inst.topic));
            }
        }
    }

    #[test]
    fn all_templates_execute_and_agree_across_models() {
        let d = generate(7);
        let dbs = [
            load(&d, DataModel::V1),
            load(&d, DataModel::V2),
            load(&d, DataModel::V3),
        ];
        let mut rng = Rng::new(13);
        for (i, (_, f)) in TEMPLATES.iter().enumerate() {
            // Two instantiations per template for slot variety.
            for rep in 0..2 {
                let inst = f(&d, &mut rng);
                let results: Vec<_> = [&inst.sql_v1, &inst.sql_v2, &inst.sql_v3]
                    .iter()
                    .zip(&dbs)
                    .map(|(sql, db)| {
                        let q = sqlkit::parse_query(sql).unwrap();
                        execute(db, &q).unwrap_or_else(|e| {
                            panic!("template {i}/{rep} ({}): {e}\n{sql}", inst.topic)
                        })
                    })
                    .collect();
                assert!(
                    results[0].matches(&results[1]),
                    "template {i} ({}) v1 vs v2 disagree\nQ: {}\nv1:\n{}\nv2:\n{}",
                    inst.topic,
                    inst.question,
                    results[0],
                    results[1]
                );
                assert!(
                    results[0].matches(&results[2]),
                    "template {i} ({}) v1 vs v3 disagree\nQ: {}\nv1:\n{}\nv3:\n{}",
                    inst.topic,
                    inst.question,
                    results[0],
                    results[2]
                );
            }
        }
    }

    #[test]
    fn v3_gold_has_no_set_operations() {
        let d = generate(7);
        let mut rng = Rng::new(17);
        for _ in 0..100 {
            let inst = instantiate(&d, &mut rng);
            let q = sqlkit::parse_query(&inst.sql_v3).unwrap();
            assert_eq!(
                sqlkit::analyze(&q).set_ops,
                0,
                "v3 gold uses a set op: {}",
                inst.sql_v3
            );
        }
    }

    #[test]
    fn weights_are_positive() {
        assert!(TEMPLATES.iter().all(|(w, _)| *w > 0.0));
    }

    #[test]
    fn instantiate_is_deterministic() {
        let d = generate(7);
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        for _ in 0..20 {
            let x = instantiate(&d, &mut a);
            let y = instantiate(&d, &mut b);
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql_v1, y.sql_v1);
        }
    }
}
