//! Gold-corpus construction: the paper's Section 6.1 sampling pipeline.
//!
//! Raw questions → near-duplicate filtering → topic clustering →
//! diversity sampling (≈1K labeled for v3) → hardness-uniform
//! subsampling (400) → 100-test / 300-train split. The same questions are
//! labeled for all three data models.
//!
//! The v1/v2/v3 labels of one question are semantically equivalent by
//! construction, which makes them differential test cases for free: the
//! conformance harness (`bench --bin conformance`, gold-pair axis)
//! executes every triple on the matching database instances and requires
//! EX-equal results, so a template or engine regression that breaks the
//! equivalence is caught before it can skew Tables 3–6.

use crate::embed::{cosine, embed, Embedding};
use crate::example::GoldExample;
use crate::templates::instantiate;
use crate::topic::kmeans;
use footballdb::model::Domain;
use footballdb::DataModel;
use sqlkit::{classify_sql, Hardness};
use xrng::Rng;

/// The assembled benchmark: the pools the paper releases plus the
/// train/test split used in the experiments.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The ~1K diversity-sampled gold pool (paper: labeled for v3, and
    /// here for all models since our templates produce all three).
    pub gold_pool: Vec<GoldExample>,
    /// The 400 hardness-uniform examples labeled for every model.
    pub selected: Vec<GoldExample>,
    /// Train split (300 of the 400).
    pub train: Vec<GoldExample>,
    /// Test split (100 of the 400).
    pub test: Vec<GoldExample>,
}

/// Pipeline size knobs (defaults follow the paper; tests shrink them).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Raw template instantiations before dedup (paper: ≈6K logged).
    pub raw_questions: usize,
    /// Diversity-sampled pool size (paper: ≈1K).
    pub pool_size: usize,
    /// Hardness-uniform selection size (paper: 400).
    pub selected_size: usize,
    /// Test-set size (paper: 100).
    pub test_size: usize,
    /// Number of topic clusters.
    pub clusters: usize,
    /// Diversity threshold: members more similar than this to the
    /// cluster medoid are dropped (paper: 0.93).
    pub diversity_threshold: f32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            raw_questions: 6000,
            pool_size: 1000,
            selected_size: 400,
            test_size: 100,
            clusters: 26,
            diversity_threshold: 0.93,
        }
    }
}

/// Generates raw template instantiations and deduplicates by question
/// text.
pub fn build_raw_corpus(d: &Domain, rng: &mut Rng, n: usize) -> Vec<GoldExample> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    // Cap the attempts so a tiny template space cannot loop forever.
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 4 {
        attempts += 1;
        let inst = instantiate(d, rng);
        if seen.insert(inst.question.clone()) {
            let id = out.len();
            out.push(inst.into_example(id));
        }
    }
    out
}

/// Diversity sampling per the paper: cluster, keep each cluster's medoid
/// plus members whose similarity to the medoid is *below* the threshold
/// (near-duplicates of the medoid are dropped), then trim round-robin
/// across clusters to the requested size.
pub fn diversity_sample(
    examples: &[GoldExample],
    cfg: &PipelineConfig,
    rng: &mut Rng,
) -> Vec<usize> {
    let embeddings: Vec<Embedding> = examples.iter().map(|e| embed(&e.question)).collect();
    let clustering = kmeans(&embeddings, cfg.clusters, rng, 15);

    // Per-cluster keep lists: medoid first, then diverse members.
    let mut per_cluster: Vec<Vec<usize>> = Vec::with_capacity(clustering.k);
    for c in 0..clustering.k {
        let mut keep = Vec::new();
        if let Some(m) = clustering.medoid[c] {
            keep.push(m);
            let medoid_emb = &embeddings[m];
            for i in clustering.members(c) {
                if i != m && cosine(&embeddings[i], medoid_emb) < cfg.diversity_threshold {
                    keep.push(i);
                }
            }
        }
        per_cluster.push(keep);
    }

    // Round-robin across clusters until the pool size is reached, which
    // preserves topical balance when trimming.
    let mut out = Vec::with_capacity(cfg.pool_size);
    let mut cursor = vec![0usize; per_cluster.len()];
    while out.len() < cfg.pool_size {
        let mut progressed = false;
        for (c, keep) in per_cluster.iter().enumerate() {
            if out.len() >= cfg.pool_size {
                break;
            }
            if cursor[c] < keep.len() {
                out.push(keep[cursor[c]]);
                cursor[c] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

/// Hardness of an example under a data model.
pub fn hardness_of(example: &GoldExample, model: DataModel) -> Hardness {
    classify_sql(example.sql(model))
}

/// Uniform sampling over Spider hardness buckets (computed, as in the
/// paper, on the v3 labels). Shortfalls in sparse buckets are refilled
/// from the remaining pool.
pub fn hardness_uniform_sample(
    examples: &[GoldExample],
    pool: &[usize],
    n: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    let mut buckets: [Vec<usize>; 4] = Default::default();
    for &i in pool {
        let h = hardness_of(&examples[i], DataModel::V3);
        buckets[(h.numeric() - 1) as usize].push(i);
    }
    for b in &mut buckets {
        rng.shuffle(b);
    }
    let per_bucket = n / 4;
    let mut out = Vec::with_capacity(n);
    let mut leftovers = Vec::new();
    for b in &mut buckets {
        let take = per_bucket.min(b.len());
        out.extend(b.drain(..take));
        leftovers.append(b);
    }
    rng.shuffle(&mut leftovers);
    while out.len() < n {
        match leftovers.pop() {
            Some(i) => out.push(i),
            None => break,
        }
    }
    out.truncate(n);
    out
}

/// Runs the full pipeline.
pub fn build_benchmark(d: &Domain, seed: u64, cfg: &PipelineConfig) -> Benchmark {
    let root = Rng::new(seed);
    let mut raw = build_raw_corpus(d, &mut root.fork("raw"), cfg.raw_questions);
    // Re-id after dedup for stable references.
    for (i, e) in raw.iter_mut().enumerate() {
        e.id = i;
    }

    let pool_idx = diversity_sample(&raw, cfg, &mut root.fork("diversity"));
    let gold_pool: Vec<GoldExample> = pool_idx.iter().map(|&i| raw[i].clone()).collect();

    let sel_idx = hardness_uniform_sample(
        &raw,
        &pool_idx,
        cfg.selected_size,
        &mut root.fork("hardness"),
    );
    let mut selected: Vec<GoldExample> = sel_idx.iter().map(|&i| raw[i].clone()).collect();

    let mut split_rng = root.fork("split");
    split_rng.shuffle(&mut selected);
    let test: Vec<GoldExample> = selected
        .iter()
        .take(cfg.test_size.min(selected.len()))
        .cloned()
        .collect();
    let train: Vec<GoldExample> = selected.iter().skip(test.len()).cloned().collect();

    Benchmark {
        gold_pool,
        selected,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::generate;

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            raw_questions: 800,
            pool_size: 300,
            selected_size: 120,
            test_size: 30,
            clusters: 15,
            diversity_threshold: 0.93,
        }
    }

    #[test]
    fn raw_corpus_has_unique_questions() {
        let d = generate(7);
        let mut rng = Rng::new(1);
        let raw = build_raw_corpus(&d, &mut rng, 500);
        let mut qs: Vec<&str> = raw.iter().map(|e| e.question.as_str()).collect();
        qs.sort_unstable();
        qs.dedup();
        assert_eq!(qs.len(), raw.len());
        assert!(raw.len() >= 450, "only {} raw questions", raw.len());
    }

    #[test]
    fn diversity_sample_has_no_duplicates_and_respects_size() {
        let d = generate(7);
        let cfg = small_cfg();
        let mut rng = Rng::new(2);
        let raw = build_raw_corpus(&d, &mut rng, cfg.raw_questions);
        let pool = diversity_sample(&raw, &cfg, &mut rng);
        assert!(pool.len() <= cfg.pool_size);
        let mut sorted = pool.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pool.len());
    }

    #[test]
    fn diversity_sample_spans_topics() {
        let d = generate(7);
        let cfg = small_cfg();
        let mut rng = Rng::new(3);
        let raw = build_raw_corpus(&d, &mut rng, cfg.raw_questions);
        let pool = diversity_sample(&raw, &cfg, &mut rng);
        let topics: std::collections::HashSet<&str> = pool.iter().map(|&i| raw[i].topic).collect();
        assert!(topics.len() >= 10, "only {} topics", topics.len());
    }

    #[test]
    fn hardness_sample_is_balanced_when_possible() {
        let d = generate(7);
        let cfg = small_cfg();
        let mut rng = Rng::new(4);
        let raw = build_raw_corpus(&d, &mut rng, cfg.raw_questions);
        let pool: Vec<usize> = (0..raw.len()).collect();
        let sel = hardness_uniform_sample(&raw, &pool, 120, &mut rng);
        assert_eq!(sel.len(), 120);
        let mut counts = [0usize; 4];
        for &i in &sel {
            counts[(hardness_of(&raw[i], DataModel::V3).numeric() - 1) as usize] += 1;
        }
        // Every populated bucket contributes; none dominates completely.
        assert!(counts.iter().filter(|c| **c > 0).count() >= 2, "{counts:?}");
    }

    #[test]
    fn benchmark_splits_are_disjoint_and_sized() {
        let d = generate(7);
        let cfg = small_cfg();
        let b = build_benchmark(&d, 9, &cfg);
        assert_eq!(b.test.len(), cfg.test_size);
        assert_eq!(b.train.len() + b.test.len(), b.selected.len());
        let test_qs: std::collections::HashSet<&str> =
            b.test.iter().map(|e| e.question.as_str()).collect();
        assert!(b
            .train
            .iter()
            .all(|e| !test_qs.contains(e.question.as_str())));
    }

    #[test]
    fn benchmark_is_deterministic() {
        let d = generate(7);
        let cfg = small_cfg();
        let a = build_benchmark(&d, 9, &cfg);
        let b = build_benchmark(&d, 9, &cfg);
        assert_eq!(a.test.len(), b.test.len());
        for (x, y) in a.test.iter().zip(&b.test) {
            assert_eq!(x.question, y.question);
        }
    }

    #[test]
    fn gold_sql_parses_for_every_model() {
        let d = generate(7);
        let cfg = small_cfg();
        let b = build_benchmark(&d, 9, &cfg);
        for e in b.selected.iter() {
            for m in DataModel::ALL {
                sqlkit::parse_query(e.sql(m))
                    .unwrap_or_else(|err| panic!("{m}: {err}\n{}", e.sql(m)));
            }
        }
    }
}
