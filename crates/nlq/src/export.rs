//! Benchmark release export.
//!
//! The paper releases FootballDB as labeled NL/SQL files (the 6K raw
//! log, the 1K gold pool for v3, and the 400 selected pairs per data
//! model). This module serializes our benchmark in the same spirit as
//! JSON Lines: one example per line with the question, topic, gold SQL
//! for all three data models, and per-model Spider hardness.

use crate::example::GoldExample;
use crate::gold::Benchmark;
use footballdb::DataModel;
use sqlkit::classify_sql;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Escapes a string for JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes one example as a single JSON object line.
pub fn example_to_json(e: &GoldExample) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"id\":{},\"question\":\"{}\",\"topic\":\"{}\",\"sql\":{{",
        e.id,
        escape(&e.question),
        escape(e.topic)
    );
    for (i, m) in DataModel::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", m.label(), escape(e.sql(*m)));
    }
    out.push_str("},\"hardness\":{");
    for (i, m) in DataModel::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":\"{}\"",
            m.label(),
            classify_sql(e.sql(*m)).label()
        );
    }
    out.push_str("}}");
    out
}

/// Serializes a set of examples as JSON Lines.
pub fn examples_to_jsonl(examples: &[GoldExample]) -> String {
    let mut out = String::new();
    for e in examples {
        out.push_str(&example_to_json(e));
        out.push('\n');
    }
    out
}

/// Writes the benchmark release files into `dir`:
/// `gold_pool.jsonl`, `selected.jsonl`, `train.jsonl`, `test.jsonl`.
pub fn write_release(benchmark: &Benchmark, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, set) in [
        ("gold_pool.jsonl", &benchmark.gold_pool),
        ("selected.jsonl", &benchmark.selected),
        ("train.jsonl", &benchmark.train),
        ("test.jsonl", &benchmark.test),
    ] {
        let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join(name))?);
        f.write_all(examples_to_jsonl(set).as_bytes())?;
        f.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> GoldExample {
        GoldExample {
            id: 3,
            question: "Who won \"the\" cup\nin 2014?".into(),
            sql: [
                "SELECT a FROM t WHERE x = 'O''Neill'".into(),
                "SELECT b FROM u".into(),
                "SELECT c FROM v".into(),
            ],
            topic: "winner",
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn example_json_has_all_fields() {
        let j = example_to_json(&example());
        assert!(j.starts_with("{\"id\":3"));
        assert!(j.contains("\\\"the\\\""));
        assert!(j.contains("\"v1\":"));
        assert!(j.contains("\"v3\":"));
        assert!(j.contains("\"hardness\""));
        assert!(j.ends_with("}}"));
        // Balanced braces (cheap well-formedness check).
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn jsonl_one_line_per_example() {
        let ex = vec![example(), example()];
        let j = examples_to_jsonl(&ex);
        assert_eq!(j.lines().count(), 2);
    }

    #[test]
    fn write_release_creates_files() {
        let dir =
            std::env::temp_dir().join(format!("footballdb-export-test-{}", std::process::id()));
        let b = Benchmark {
            gold_pool: vec![example()],
            selected: vec![example()],
            train: vec![example()],
            test: vec![example()],
        };
        write_release(&b, &dir).unwrap();
        for f in [
            "gold_pool.jsonl",
            "selected.jsonl",
            "train.jsonl",
            "test.jsonl",
        ] {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.contains("\"question\""), "{f} is missing content");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
