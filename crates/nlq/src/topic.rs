//! Topic clustering (BERTopic substitute).
//!
//! The paper clusters the filtered user questions with BERTopic to get
//! dense topical clusters, then samples diversely from each cluster. We
//! implement seeded spherical k-means over the hashed embeddings — same
//! pipeline role: group near-topic questions so sampling can enforce
//! cross-topic coverage.

use crate::embed::{Embedding, DIM};
use xrng::Rng;

/// Clustering output: an assignment per input and the centroid index of
/// each cluster's most central member.
#[derive(Debug, Clone)]
pub struct Clustering {
    pub k: usize,
    /// Cluster id per input item.
    pub assignment: Vec<usize>,
    /// For each cluster, the index of the item closest to its centroid
    /// (`None` for empty clusters).
    pub medoid: Vec<Option<usize>>,
    /// Final centroids.
    pub centroids: Vec<[f32; DIM]>,
}

impl Clustering {
    /// Items belonging to a cluster, in input order.
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == cluster)
            .map(|(i, _)| i)
            .collect()
    }
}

fn normalize(v: &mut [f32; DIM]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn dot(a: &[f32; DIM], b: &Embedding) -> f32 {
    a.iter().zip(&b.0).map(|(x, y)| x * y).sum()
}

/// Spherical k-means with k-means++-style seeding, fixed iteration cap.
pub fn kmeans(embeddings: &[Embedding], k: usize, rng: &mut Rng, iters: usize) -> Clustering {
    assert!(k > 0, "k must be positive");
    let n = embeddings.len();
    let k = k.min(n.max(1));
    if n == 0 {
        return Clustering {
            k,
            assignment: Vec::new(),
            medoid: vec![None; k],
            centroids: vec![[0.0; DIM]; k],
        };
    }

    // Seeding: first centroid uniform, the rest biased to low-similarity
    // points (cosine analogue of k-means++).
    let mut centroids: Vec<[f32; DIM]> = Vec::with_capacity(k);
    centroids.push(embeddings[rng.index(n)].0);
    while centroids.len() < k {
        let weights: Vec<f64> = embeddings
            .iter()
            .map(|e| {
                let best = centroids.iter().map(|c| dot(c, e)).fold(f32::MIN, f32::max);
                f64::from((1.0 - best).max(0.0)).powi(2) + 1e-9
            })
            .collect();
        let idx = rng.choose_weighted(&weights);
        centroids.push(embeddings[idx].0);
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        for (i, e) in embeddings.iter().enumerate() {
            let mut best = 0usize;
            let mut best_sim = f32::MIN;
            for (c, centroid) in centroids.iter().enumerate() {
                let sim = dot(centroid, e);
                if sim > best_sim {
                    best_sim = sim;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![[0f32; DIM]; k];
        for (i, e) in embeddings.iter().enumerate() {
            let c = assignment[i];
            for (s, x) in sums[c].iter_mut().zip(&e.0) {
                *s += x;
            }
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            let size = assignment.iter().filter(|a| **a == c).count();
            if size > 0 {
                normalize(sum);
                centroids[c] = *sum;
            }
        }
        if !changed {
            break;
        }
    }

    // Medoids.
    let mut medoid = vec![None; k];
    let mut medoid_sim = vec![f32::MIN; k];
    for (i, e) in embeddings.iter().enumerate() {
        let c = assignment[i];
        let sim = dot(&centroids[c], e);
        if sim > medoid_sim[c] {
            medoid_sim[c] = sim;
            medoid[c] = Some(i);
        }
    }

    Clustering {
        k,
        assignment,
        medoid,
        centroids,
    }
}

/// Purity of a clustering against ground-truth labels: the fraction of
/// items whose cluster's majority label matches their own. Used to sanity
/// check that the substitute clustering actually groups topics.
pub fn purity(assignment: &[usize], labels: &[&str], k: usize) -> f64 {
    use std::collections::HashMap;
    if assignment.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for c in 0..k {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (i, a) in assignment.iter().enumerate() {
            if *a == c {
                *counts.entry(labels[i]).or_insert(0) += 1;
            }
        }
        correct += counts.values().copied().max().unwrap_or(0);
    }
    correct as f64 / assignment.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::embed;

    fn sample_corpus() -> (Vec<Embedding>, Vec<&'static str>) {
        let questions: Vec<(&str, &str)> = vec![
            ("Who won the world cup in 2014?", "winner"),
            ("Who won the world cup in 2018?", "winner"),
            ("Which country won the 1998 world cup?", "winner"),
            ("Which club does Carlos Silva play for?", "club"),
            ("Which club does Hans Muller play for?", "club"),
            ("What is the club of Diego Lopez?", "club"),
            ("How many red cards did Brazil get in 1994?", "cards"),
            ("How many red cards did Italy get in 1990?", "cards"),
            ("Red cards for Germany at the 2006 world cup", "cards"),
        ];
        let em = questions.iter().map(|(q, _)| embed(q)).collect();
        let labels = questions.iter().map(|(_, l)| *l).collect();
        (em, labels)
    }

    #[test]
    fn clusters_group_topics() {
        let (em, labels) = sample_corpus();
        let mut rng = Rng::new(5);
        let c = kmeans(&em, 3, &mut rng, 20);
        let p = purity(&c.assignment, &labels, c.k);
        assert!(p >= 0.7, "purity = {p}");
    }

    #[test]
    fn assignment_covers_all_items() {
        let (em, _) = sample_corpus();
        let mut rng = Rng::new(5);
        let c = kmeans(&em, 3, &mut rng, 20);
        assert_eq!(c.assignment.len(), em.len());
        assert!(c.assignment.iter().all(|a| *a < c.k));
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let (em, _) = sample_corpus();
        let mut rng = Rng::new(5);
        let c = kmeans(&em, 3, &mut rng, 20);
        for (cluster, m) in c.medoid.iter().enumerate() {
            if let Some(i) = m {
                assert_eq!(c.assignment[*i], cluster);
            }
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let (em, _) = sample_corpus();
        let mut rng = Rng::new(5);
        let c = kmeans(&em, 100, &mut rng, 5);
        assert_eq!(c.k, em.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rng = Rng::new(5);
        let c = kmeans(&[], 3, &mut rng, 5);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let (em, _) = sample_corpus();
        let c1 = kmeans(&em, 3, &mut Rng::new(5), 20);
        let c2 = kmeans(&em, 3, &mut Rng::new(5), 20);
        assert_eq!(c1.assignment, c2.assignment);
    }

    #[test]
    fn members_lists_cluster_items() {
        let (em, _) = sample_corpus();
        let c = kmeans(&em, 3, &mut Rng::new(5), 20);
        let total: usize = (0..c.k).map(|k| c.members(k).len()).sum();
        assert_eq!(total, em.len());
    }

    #[test]
    fn purity_empty_is_zero() {
        assert_eq!(purity(&[], &[], 3), 0.0);
    }
}
