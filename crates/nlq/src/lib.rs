//! `nlq` — natural-language question corpus construction.
//!
//! Rebuilds the paper's data pipeline end-to-end:
//!
//! * [`templates`] — question templates over the FootballDB domain with
//!   gold SQL for all three data models (the paper's manual labels);
//! * [`log`] — the simulated nine-month deployment log (Table 1), with
//!   non-English, out-of-scope, unanswerable, and misspelled questions;
//! * [`embed`] — feature-hashed sentence embeddings (SentenceBERT
//!   substitute);
//! * [`topic`] — seeded spherical k-means (BERTopic substitute);
//! * [`gold`] — diversity sampling, hardness-uniform subsampling, and the
//!   train/test split of Section 6.1.
//!
//! # Example
//!
//! ```
//! use footballdb::generate;
//! use nlq::gold::{build_benchmark, PipelineConfig};
//!
//! let domain = generate(7);
//! let cfg = PipelineConfig {
//!     raw_questions: 400,
//!     pool_size: 150,
//!     selected_size: 60,
//!     test_size: 15,
//!     clusters: 10,
//!     ..PipelineConfig::default()
//! };
//! let bench = build_benchmark(&domain, 9, &cfg);
//! assert_eq!(bench.test.len(), 15);
//! assert_eq!(bench.train.len() + bench.test.len(), bench.selected.len());
//! ```

pub mod embed;
pub mod example;
pub mod export;
pub mod gold;
pub mod log;
pub mod templates;
pub mod topic;

pub use example::GoldExample;
pub use gold::{build_benchmark, Benchmark, PipelineConfig};
pub use log::{simulate_log, LogEntry, LogStats, PAPER_LOG_SIZE};
