//! Sentence embeddings (SentenceBERT substitute).
//!
//! The paper uses SentenceBERT cosine similarity for near-duplicate
//! detection (≥ 0.96 auto-label threshold) and diversity sampling
//! (< 0.93 to the cluster centroid). Those pipeline steps only need an
//! embedding whose cosine is high for lexically/semantically close
//! questions and low across topics. We use deterministic feature-hashed
//! bag-of-tokens embeddings with unigram + bigram features and L2
//! normalization — the classic hashing-trick sentence encoder — which has
//! exactly that operational behaviour and runs offline.

/// Embedding dimensionality.
pub const DIM: usize = 128;

/// A dense, L2-normalized sentence embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub [f32; DIM]);

/// Lowercases and splits a question into word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn hash_feature(feature: &str) -> (usize, f32) {
    // FNV-1a with a sign bit, the standard hashing-trick construction.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in feature.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let idx = (h % DIM as u64) as usize;
    let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
    (idx, sign)
}

/// Embeds a sentence.
pub fn embed(text: &str) -> Embedding {
    let tokens = tokenize(text);
    let mut v = [0f32; DIM];
    for t in &tokens {
        let (i, s) = hash_feature(t);
        v[i] += s;
    }
    for pair in tokens.windows(2) {
        let bigram = format!("{} {}", pair[0], pair[1]);
        let (i, s) = hash_feature(&bigram);
        v[i] += 0.5 * s;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding(v)
}

/// Cosine similarity between two embeddings (they are unit vectors, so
/// this is a dot product).
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_strips_punctuation_and_lowercases() {
        assert_eq!(
            tokenize("Who won the World Cup in 2014?"),
            ["who", "won", "the", "world", "cup", "in", "2014"]
        );
    }

    #[test]
    fn identical_sentences_have_similarity_one() {
        let a = embed("Who won the world cup in 2014?");
        let b = embed("who won the world cup in 2014");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn near_duplicates_score_high() {
        let a = embed("Who won the world cup in 2014?");
        let b = embed("Who won the world cup in 2018?");
        let sim = cosine(&a, &b);
        assert!(sim > 0.8, "sim = {sim}");
    }

    #[test]
    fn different_topics_score_lower() {
        let a = embed("Who won the world cup in 2014?");
        let b = embed("Which club does Carlos Silva play for?");
        let sim = cosine(&a, &b);
        assert!(sim < 0.5, "sim = {sim}");
    }

    #[test]
    fn paraphrase_closer_than_cross_topic() {
        let q = embed("Who won the world cup in 2014?");
        let para = embed("Which country won the 2014 world cup?");
        let other = embed("How many red cards did Brazil get in 1994?");
        assert!(cosine(&q, &para) > cosine(&q, &other));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = embed("some arbitrary question about football");
        let norm: f32 = e.0.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embed("???");
        assert!(e.0.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn embedding_is_deterministic() {
        assert_eq!(embed("alpha beta"), embed("alpha beta"));
    }
}
