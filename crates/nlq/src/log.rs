//! Live-deployment log simulation (Table 1).
//!
//! Reproduces the statistics of the paper's nine-month deployment:
//! ~5,900 NL questions, 89% SQL-generation rate, sparse thumbs-up,
//! frequent thumbs-down, and ~1,300 expert SQL corrections — plus the
//! noise phenomena the paper reports: non-English questions, out-of-scope
//! questions, unanswerable questions, and spelling errors in player
//! names.

use crate::templates::instantiate;
use footballdb::model::Domain;
use xrng::Rng;

/// What kind of interaction a log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A football question the database can answer.
    Answerable,
    /// Asked in a language other than English.
    NonEnglish,
    /// Unrelated to football entirely.
    OutOfScope,
    /// Football-related but not answerable from the database content
    /// (semantic mismatch).
    Unanswerable,
}

/// User feedback on a shown result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    None,
    ThumbsUp,
    ThumbsDown,
}

/// One logged interaction.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub question: String,
    pub category: Category,
    /// Whether the deployed system produced SQL at all.
    pub sql_generated: bool,
    pub feedback: Feedback,
    /// Whether an expert user submitted a corrected SQL query.
    pub corrected: bool,
}

/// Aggregate statistics in the shape of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    pub questions: usize,
    pub sql_generated: usize,
    pub no_sql_generated: usize,
    pub thumbs_up: usize,
    pub thumbs_down: usize,
    pub corrected: usize,
}

impl LogStats {
    pub fn from_entries(entries: &[LogEntry]) -> LogStats {
        LogStats {
            questions: entries.len(),
            sql_generated: entries.iter().filter(|e| e.sql_generated).count(),
            no_sql_generated: entries.iter().filter(|e| !e.sql_generated).count(),
            thumbs_up: entries
                .iter()
                .filter(|e| e.feedback == Feedback::ThumbsUp)
                .count(),
            thumbs_down: entries
                .iter()
                .filter(|e| e.feedback == Feedback::ThumbsDown)
                .count(),
            corrected: entries.iter().filter(|e| e.corrected).count(),
        }
    }
}

/// Injects a realistic typo into a question (character swap, drop, or
/// doubling — the misspelled-player-name phenomenon).
pub fn add_typo(question: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = question.chars().collect();
    if chars.len() < 4 {
        return question.to_string();
    }
    // Pick a position inside a word.
    let mut idx = 1 + rng.index(chars.len() - 2);
    for _ in 0..10 {
        if chars[idx].is_alphabetic() && chars[idx + 1].is_alphabetic() {
            break;
        }
        idx = 1 + rng.index(chars.len() - 2);
    }
    let mut out = chars.clone();
    match rng.index(3) {
        0 => out.swap(idx, idx + 1),
        1 => {
            out.remove(idx);
        }
        _ => out.insert(idx, chars[idx]),
    }
    out.into_iter().collect()
}

const NON_ENGLISH: [&str; 6] = [
    "Wer hat die Weltmeisterschaft 2014 gewonnen?",
    "Qui a gagné la coupe du monde 1998 ?",
    "¿Quién ganó la copa del mundo en 2010?",
    "Chi ha vinto i mondiali del 2006?",
    "Quem venceu a copa do mundo de 2002?",
    "2022 dünya kupasını kim kazandı?",
];

const OUT_OF_SCOPE: [&str; 6] = [
    "What is the weather in Doha today?",
    "Tell me a joke about databases",
    "How do I cook risotto?",
    "What is the capital of Switzerland?",
    "Who is the president of FIFA's biggest sponsor?",
    "Play some music",
];

const UNANSWERABLE: [&str; 6] = [
    "Who was the best dribbler of the 2018 world cup?",
    "Which team had the most possession in 2014?",
    "How many kilometers did the players run in the 2022 final?",
    "What was the expected goals value of the 2010 final?",
    "Which goalkeeper made the most saves in 1986?",
    "Who had the fastest shot at the 2006 world cup?",
];

/// Simulates `n` logged interactions.
pub fn simulate_log(d: &Domain, rng: &mut Rng, n: usize) -> Vec<LogEntry> {
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        // Category mix observed in the deployment.
        let category = match rng.choose_weighted(&[0.83, 0.05, 0.06, 0.06]) {
            0 => Category::Answerable,
            1 => Category::NonEnglish,
            2 => Category::OutOfScope,
            _ => Category::Unanswerable,
        };
        let question = match category {
            Category::Answerable => {
                let q = instantiate(d, rng).question;
                if rng.chance(0.12) {
                    add_typo(&q, rng)
                } else {
                    q
                }
            }
            Category::NonEnglish => rng.choose(&NON_ENGLISH).to_string(),
            Category::OutOfScope => rng.choose(&OUT_OF_SCOPE).to_string(),
            Category::Unanswerable => rng.choose(&UNANSWERABLE).to_string(),
        };
        // SQL generation probability by category, tuned to the overall
        // 89% rate of Table 1 (failures: other language, out of scope,
        // no similar training questions).
        let p_sql = match category {
            Category::Answerable => 0.955,
            Category::NonEnglish => 0.30,
            Category::OutOfScope => 0.70,
            Category::Unanswerable => 0.80,
        };
        let sql_generated = rng.chance(p_sql);
        // Feedback is sparse; thumbs-down dominates (174 vs 949).
        let feedback = if !sql_generated {
            Feedback::None
        } else if rng.chance(0.0295) {
            Feedback::ThumbsUp
        } else if rng.chance(0.166) {
            Feedback::ThumbsDown
        } else {
            Feedback::None
        };
        // Expert corrections: more likely after a thumbs-down.
        let corrected = sql_generated
            && match feedback {
                Feedback::ThumbsDown => rng.chance(0.55),
                _ => rng.chance(0.19),
            };
        entries.push(LogEntry {
            question,
            category,
            sql_generated,
            feedback,
            corrected,
        });
    }
    entries
}

/// The paper's deployment volume.
pub const PAPER_LOG_SIZE: usize = 5900;

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::generate;

    #[test]
    fn stats_reproduce_table1_shape() {
        let d = generate(7);
        let mut rng = Rng::new(21);
        let entries = simulate_log(&d, &mut rng, PAPER_LOG_SIZE);
        let s = LogStats::from_entries(&entries);
        assert_eq!(s.questions, 5900);
        // Paper: 5,275 generated / 625 not (89.4%).
        let rate = s.sql_generated as f64 / s.questions as f64;
        assert!((0.85..0.93).contains(&rate), "rate = {rate}");
        // Paper: 174 up, 949 down, 1,287 corrections.
        assert!((100..260).contains(&s.thumbs_up), "up = {}", s.thumbs_up);
        assert!(
            (800..1100).contains(&s.thumbs_down),
            "down = {}",
            s.thumbs_down
        );
        assert!(
            (1100..1500).contains(&s.corrected),
            "corr = {}",
            s.corrected
        );
        assert_eq!(s.sql_generated + s.no_sql_generated, s.questions);
    }

    #[test]
    fn log_contains_all_noise_categories() {
        let d = generate(7);
        let mut rng = Rng::new(22);
        let entries = simulate_log(&d, &mut rng, 2000);
        for cat in [
            Category::Answerable,
            Category::NonEnglish,
            Category::OutOfScope,
            Category::Unanswerable,
        ] {
            assert!(entries.iter().any(|e| e.category == cat), "{cat:?} missing");
        }
    }

    #[test]
    fn corrections_only_when_sql_generated() {
        let d = generate(7);
        let mut rng = Rng::new(23);
        let entries = simulate_log(&d, &mut rng, 3000);
        assert!(entries.iter().all(|e| !e.corrected || e.sql_generated));
        assert!(entries
            .iter()
            .all(|e| e.feedback == Feedback::None || e.sql_generated));
    }

    #[test]
    fn typos_change_text_but_keep_length_close() {
        let mut rng = Rng::new(24);
        let q = "Who won the world cup in 2014?";
        let mut changed = 0;
        for _ in 0..50 {
            let t = add_typo(q, &mut rng);
            assert!((t.chars().count() as i64 - q.chars().count() as i64).abs() <= 1);
            if t != q {
                changed += 1;
            }
        }
        assert!(changed > 40);
    }

    #[test]
    fn add_typo_handles_short_strings() {
        let mut rng = Rng::new(25);
        assert_eq!(add_typo("ok", &mut rng), "ok");
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = generate(7);
        let a = simulate_log(&d, &mut Rng::new(26), 500);
        let b = simulate_log(&d, &mut Rng::new(26), 500);
        assert_eq!(LogStats::from_entries(&a), LogStats::from_entries(&b));
        assert_eq!(a[17].question, b[17].question);
    }
}
