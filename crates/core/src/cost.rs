//! Inference-time model (Table 7).
//!
//! We cannot run the original models on v100/A100 GPUs, so latency is an
//! analytic model: a per-system base time plus a per-output-token decode
//! time, with multiplicative noise. Constants are calibrated to Table
//! 7's means and standard deviations:
//!
//! | system          | paper mean ± sd (s) | driver                         |
//! |-----------------|---------------------|--------------------------------|
//! | ValueNet        | 1.06 ± 0.14         | small encoder + IR conversion  |
//! | T5-Picard       | 652 ± 166           | constrained decoding backtracks|
//! | T5-Picard_Keys  | 294 ± 76            | keys prune invalid prefixes    |
//! | GPT-3.5         | 2.51 ± 1.06         | hosted API                     |
//! | LLaMA2-70B      | 37.0 ± 17.3         | 70B on 4×A100                  |

use crate::capability::SystemKind;
use xrng::Rng;

/// Latency-model parameters for one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed per-query overhead in seconds.
    pub base: f64,
    /// Seconds per generated SQL token (includes constrained-decoding
    /// re-parse overhead where applicable).
    pub per_token: f64,
    /// Relative standard deviation of multiplicative noise.
    pub rel_sd: f64,
    /// Hardware the paper ran on ("-" for the hosted API).
    pub hardware: &'static str,
    /// Number of GPUs.
    pub gpus: u32,
}

/// Calibrated parameters per system.
pub fn params(kind: SystemKind) -> CostParams {
    match kind {
        SystemKind::ValueNet => CostParams {
            base: 0.55,
            per_token: 0.008,
            rel_sd: 0.12,
            hardware: "v100",
            gpus: 1,
        },
        SystemKind::T5Picard => CostParams {
            base: 30.0,
            per_token: 9.4,
            rel_sd: 0.15,
            hardware: "v100",
            gpus: 1,
        },
        SystemKind::T5PicardKeys => CostParams {
            base: 15.0,
            per_token: 4.3,
            rel_sd: 0.15,
            hardware: "v100",
            gpus: 1,
        },
        SystemKind::Gpt35 => CostParams {
            base: 1.0,
            per_token: 0.024,
            rel_sd: 0.40,
            hardware: "-",
            gpus: 0,
        },
        SystemKind::Llama2 => CostParams {
            base: 12.0,
            per_token: 0.40,
            rel_sd: 0.42,
            hardware: "A100",
            gpus: 4,
        },
    }
}

/// Simulated per-query latency in seconds.
///
/// The decode cost grows with output length but sub-linearly in
/// practice (batching, prefix reuse); we damp the token term so the
/// query-length spread matches Table 7's reported deviations.
pub fn latency(kind: SystemKind, output_tokens: usize, rng: &mut Rng) -> f64 {
    let p = params(kind);
    let effective = 32.0 + 0.5 * output_tokens as f64;
    let mean = p.base + p.per_token * effective;
    let noise = rng.normal_with(1.0, p.rel_sd).max(0.25);
    mean * noise
}

/// Mean and standard deviation of a sample.
pub fn mean_sd(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Typical gold query length in tokens (≈ 230–280 chars / 4).
    const TYPICAL_TOKENS: usize = 63;

    fn simulate(kind: SystemKind, n: usize) -> (f64, f64) {
        let mut rng = Rng::new(99);
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                // Token-length spread comparable to the gold corpus.
                let t = TYPICAL_TOKENS as i64 + rng.range_i64(-16, 16);
                latency(kind, t as usize, &mut rng)
            })
            .collect();
        mean_sd(&samples)
    }

    #[test]
    fn valuenet_near_one_second() {
        let (m, sd) = simulate(SystemKind::ValueNet, 2000);
        assert!((0.9..1.25).contains(&m), "mean = {m}");
        assert!(sd < 0.3, "sd = {sd}");
    }

    #[test]
    fn t5_picard_near_ten_minutes() {
        let (m, _) = simulate(SystemKind::T5Picard, 2000);
        assert!((560.0..750.0).contains(&m), "mean = {m}");
    }

    #[test]
    fn keys_variant_roughly_halves_latency() {
        let (plain, _) = simulate(SystemKind::T5Picard, 1000);
        let (keys, _) = simulate(SystemKind::T5PicardKeys, 1000);
        let ratio = plain / keys;
        assert!((1.8..2.8).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn gpt_is_interactive_llama_is_not() {
        let (gpt, _) = simulate(SystemKind::Gpt35, 2000);
        let (llama, _) = simulate(SystemKind::Llama2, 2000);
        assert!(gpt < 3.5, "gpt = {gpt}");
        assert!((28.0..48.0).contains(&llama), "llama = {llama}");
        // The paper's 3-second interactivity bar (RQ5).
        assert!(gpt < 3.0 || gpt < llama);
    }

    #[test]
    fn latency_is_positive_and_noisy() {
        let mut rng = Rng::new(1);
        let a = latency(SystemKind::Gpt35, 60, &mut rng);
        let b = latency(SystemKind::Gpt35, 60, &mut rng);
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_sd_basics() {
        let (m, sd) = mean_sd(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((sd - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_sd(&[]), (0.0, 0.0));
    }

    #[test]
    fn hardware_matches_table7() {
        assert_eq!(params(SystemKind::ValueNet).hardware, "v100");
        assert_eq!(params(SystemKind::Llama2).gpus, 4);
        assert_eq!(params(SystemKind::Gpt35).hardware, "-");
    }
}
