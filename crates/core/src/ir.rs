//! SemQL-style intermediate representation.
//!
//! IRNet/ValueNet do not predict SQL directly: they predict an IR that
//! eliminates FROM clauses (and join conditions), expressing the query as
//! projections + a filter tree over (table, column) slots. The IR is then
//! converted back to SQL, reconstructing the joins with the shortest-
//! join-path algorithm over the schema's FK graph ([`crate::joinpath`]).
//!
//! Both directions are *lossy and partial*, exactly as the paper
//! describes: set operations, derived tables, and repeated table
//! instances have no IR form (pre-processing failures), and the join
//! reconstruction fails on multi-FK table pairs (post-processing
//! failures). These are the mechanisms behind ValueNet's v1 behaviour.

use crate::joinpath::{JoinGraph, JoinPathError};
use sqlkit::ast::{
    AggFunc, BinOp, ColumnRef, Expr, Join, JoinKind, Lit, OrderItem, Query, QueryBody, Select,
    SelectItem, TableRef,
};
use std::collections::HashMap;
use std::fmt;

/// A (table, column) slot in the IR. Tables are base-table names — the
/// IR has no aliases.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IrColumn {
    pub table: String,
    pub column: String,
}

/// A projection: an optional aggregate over a column (or `*`).
#[derive(Debug, Clone, PartialEq)]
pub struct IrProjection {
    pub agg: Option<AggFunc>,
    pub distinct: bool,
    /// `None` means `*` (only valid under `count`).
    pub column: Option<IrColumn>,
}

/// Comparison operators in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrOp {
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Like,
}

impl IrOp {
    fn to_binop(self) -> BinOp {
        match self {
            IrOp::Eq => BinOp::Eq,
            IrOp::Neq => BinOp::Neq,
            IrOp::Lt => BinOp::Lt,
            IrOp::Lte => BinOp::Lte,
            IrOp::Gt => BinOp::Gt,
            IrOp::Gte => BinOp::Gte,
            IrOp::Like => BinOp::Like,
        }
    }

    fn from_binop(op: BinOp) -> Option<IrOp> {
        Some(match op {
            BinOp::Eq => IrOp::Eq,
            BinOp::Neq => IrOp::Neq,
            BinOp::Lt => IrOp::Lt,
            BinOp::Lte => IrOp::Lte,
            BinOp::Gt => IrOp::Gt,
            BinOp::Gte => IrOp::Gte,
            BinOp::Like => IrOp::Like,
            _ => return None,
        })
    }
}

/// A filter predicate: column ⟨op⟩ (literal | column) or BETWEEN.
#[derive(Debug, Clone, PartialEq)]
pub enum IrPred {
    Cmp {
        column: IrColumn,
        op: IrOp,
        value: IrValue,
    },
    Between {
        column: IrColumn,
        low: Lit,
        high: Lit,
    },
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum IrValue {
    Lit(Lit),
    Column(IrColumn),
}

/// The SemQL "Filter subtree": a boolean tree of predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum IrFilter {
    Pred(IrPred),
    And(Vec<IrFilter>),
    Or(Vec<IrFilter>),
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct IrOrder {
    pub agg: Option<AggFunc>,
    pub column: Option<IrColumn>,
    pub desc: bool,
}

/// The IR of one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SemQl {
    pub distinct: bool,
    pub projections: Vec<IrProjection>,
    pub filter: Option<IrFilter>,
    pub group_by: Vec<IrColumn>,
    /// HAVING restricted to a single aggregate comparison (SemQL folds
    /// HAVING into the filter subtree).
    pub having: Option<(AggFunc, Option<IrColumn>, IrOp, Lit)>,
    pub order_by: Vec<IrOrder>,
    pub limit: Option<u64>,
    /// Tables mentioned anywhere, in first-mention order.
    pub tables: Vec<String>,
}

/// Why a SQL query has no IR form (pre-processing failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    SetOperation,
    DerivedTable,
    RepeatedTableInstance(String),
    Subquery,
    UnsupportedExpression(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::SetOperation => f.write_str("set operations have no IR form"),
            IrError::DerivedTable => f.write_str("derived tables have no IR form"),
            IrError::RepeatedTableInstance(t) => {
                write!(f, "table {t:?} instantiated more than once")
            }
            IrError::Subquery => f.write_str("nested subqueries have no IR form"),
            IrError::UnsupportedExpression(e) => write!(f, "unsupported expression: {e}"),
        }
    }
}

impl SemQl {
    /// Converts a parsed SQL query into the IR. Fails on the shapes the
    /// Spider parser / SemQL grammar cannot represent.
    pub fn from_query(query: &Query) -> Result<SemQl, IrError> {
        let select = match &query.body {
            QueryBody::Select(s) => s,
            QueryBody::SetOp { .. } => return Err(IrError::SetOperation),
        };
        // Alias → base table map; reject derived tables and repeats.
        let mut alias_map: HashMap<String, String> = HashMap::new();
        let mut tables: Vec<String> = Vec::new();
        for t in select.table_refs() {
            match t {
                TableRef::Named { name, .. } => {
                    if tables.iter().any(|x| x.eq_ignore_ascii_case(name)) {
                        return Err(IrError::RepeatedTableInstance(name.clone()));
                    }
                    tables.push(name.clone());
                    alias_map.insert(t.binding().to_ascii_lowercase(), name.clone());
                }
                TableRef::Derived { .. } => return Err(IrError::DerivedTable),
            }
        }
        let resolve = |c: &ColumnRef| -> Result<IrColumn, IrError> {
            let table = match &c.table {
                Some(a) => alias_map
                    .get(&a.to_ascii_lowercase())
                    .cloned()
                    .ok_or_else(|| IrError::UnsupportedExpression(format!("alias {a}")))?,
                None => {
                    // Bare column: attribute to the unique table that has
                    // it, or the first table (SemQL's heuristic).
                    tables.first().cloned().unwrap_or_default()
                }
            };
            Ok(IrColumn {
                table,
                column: c.column.clone(),
            })
        };

        let mut ir = SemQl {
            distinct: select.distinct,
            tables: tables.clone(),
            limit: query.limit,
            ..SemQl::default()
        };

        for item in &select.projections {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(IrError::UnsupportedExpression("wildcard".into()))
                }
                SelectItem::Expr { expr, .. } => {
                    ir.projections.push(projection_of(expr, &resolve)?)
                }
            }
        }
        if let Some(w) = &select.where_clause {
            ir.filter = Some(filter_of(w, &resolve)?);
        }
        for g in &select.group_by {
            match g {
                Expr::Column(c) => ir.group_by.push(resolve(c)?),
                other => return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other))),
            }
        }
        if let Some(h) = &select.having {
            ir.having = Some(having_of(h, &resolve)?);
        }
        for o in &query.order_by {
            ir.order_by.push(order_of(o, &resolve)?);
        }
        Ok(ir)
    }

    /// Reconstructs SQL from the IR using the join-path algorithm. This
    /// is the post-processing stage; it fails on multi-FK table pairs.
    pub fn to_sql(&self, graph: &JoinGraph) -> Result<String, JoinPathError> {
        // Join tree over the mentioned tables.
        let edges = graph.join_tree(&self.tables)?;

        // Assign aliases T1.. in table order.
        let mut alias: HashMap<String, String> = HashMap::new();
        let mut ordered: Vec<String> = Vec::new();
        let add = |t: &str, ordered: &mut Vec<String>, alias: &mut HashMap<String, String>| {
            if !alias.contains_key(t) {
                ordered.push(t.to_string());
                let a = format!("T{}", ordered.len());
                alias.insert(t.to_string(), a);
            }
        };
        for t in &self.tables {
            add(t, &mut ordered, &mut alias);
        }
        for e in &edges {
            add(&e.from_table, &mut ordered, &mut alias);
            add(&e.to_table, &mut ordered, &mut alias);
        }

        let col = |c: &IrColumn| Expr::col(&alias[&c.table], &c.column);

        let mut select = Select {
            distinct: self.distinct,
            ..Select::default()
        };
        for p in &self.projections {
            let expr = match (&p.agg, &p.column) {
                (Some(f), Some(c)) => Expr::Agg {
                    func: *f,
                    distinct: p.distinct,
                    arg: Some(Box::new(col(c))),
                },
                (Some(f), None) => Expr::Agg {
                    func: *f,
                    distinct: p.distinct,
                    arg: None,
                },
                (None, Some(c)) => col(c),
                (None, None) => Expr::int(1),
            };
            select
                .projections
                .push(SelectItem::Expr { expr, alias: None });
        }

        // FROM + joins: first table, then each edge joins in the table
        // that is not yet present.
        let mut present: Vec<&str> = Vec::new();
        let first = ordered.first().cloned().unwrap_or_default();
        select.from.push(TableRef::Named {
            name: first.clone(),
            alias: Some(alias[&first].clone()),
        });
        present.push(&ordered[0]);
        for e in &edges {
            let (new_table, on) = if present.iter().any(|p| *p == e.from_table) {
                (
                    e.to_table.as_str(),
                    Expr::eq(
                        Expr::col(&alias[&e.from_table], &e.from_column),
                        Expr::col(&alias[&e.to_table], &e.to_column),
                    ),
                )
            } else {
                (
                    e.from_table.as_str(),
                    Expr::eq(
                        Expr::col(&alias[&e.to_table], &e.to_column),
                        Expr::col(&alias[&e.from_table], &e.from_column),
                    ),
                )
            };
            if present.contains(&new_table) {
                continue;
            }
            select.joins.push(Join {
                kind: JoinKind::Inner,
                table: TableRef::Named {
                    name: new_table.to_string(),
                    alias: Some(alias[new_table].clone()),
                },
                on: Some(on),
            });
            present.push(match present.iter().any(|p| *p == e.from_table) {
                true => match ordered.iter().find(|t| *t == new_table) {
                    Some(t) => t.as_str(),
                    None => new_table,
                },
                false => new_table,
            });
        }

        if let Some(f) = &self.filter {
            select.where_clause = Some(filter_to_expr(f, &col));
        }
        select.group_by = self.group_by.iter().map(&col).collect();
        if let Some((f, c, op, lit)) = &self.having {
            let agg = Expr::Agg {
                func: *f,
                distinct: false,
                arg: c.as_ref().map(|c| Box::new(col(c))),
            };
            select.having = Some(Expr::binary(agg, op.to_binop(), Expr::Literal(lit.clone())));
        }

        let order_by = self
            .order_by
            .iter()
            .map(|o| OrderItem {
                expr: match (&o.agg, &o.column) {
                    (Some(f), c) => Expr::Agg {
                        func: *f,
                        distinct: false,
                        arg: c.as_ref().map(|c| Box::new(col(c))),
                    },
                    (None, Some(c)) => col(c),
                    (None, None) => Expr::int(1),
                },
                desc: o.desc,
            })
            .collect();

        let query = Query {
            body: QueryBody::Select(select),
            order_by,
            limit: self.limit,
        };
        Ok(sqlkit::to_sql(&query))
    }
}

fn projection_of(
    expr: &Expr,
    resolve: &impl Fn(&ColumnRef) -> Result<IrColumn, IrError>,
) -> Result<IrProjection, IrError> {
    match expr {
        Expr::Column(c) => Ok(IrProjection {
            agg: None,
            distinct: false,
            column: Some(resolve(c)?),
        }),
        Expr::Agg {
            func,
            distinct,
            arg,
        } => {
            let column = match arg.as_deref() {
                None => None,
                Some(Expr::Column(c)) => Some(resolve(c)?),
                Some(other) => {
                    return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other)))
                }
            };
            Ok(IrProjection {
                agg: Some(*func),
                distinct: *distinct,
                column,
            })
        }
        other => Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other))),
    }
}

fn filter_of(
    expr: &Expr,
    resolve: &impl Fn(&ColumnRef) -> Result<IrColumn, IrError>,
) -> Result<IrFilter, IrError> {
    match expr {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            let mut parts = Vec::new();
            flatten(left, BinOp::And, &mut parts);
            flatten(right, BinOp::And, &mut parts);
            Ok(IrFilter::And(
                parts
                    .into_iter()
                    .map(|p| filter_of(p, resolve))
                    .collect::<Result<_, _>>()?,
            ))
        }
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let mut parts = Vec::new();
            flatten(left, BinOp::Or, &mut parts);
            flatten(right, BinOp::Or, &mut parts);
            Ok(IrFilter::Or(
                parts
                    .into_iter()
                    .map(|p| filter_of(p, resolve))
                    .collect::<Result<_, _>>()?,
            ))
        }
        Expr::Binary { left, op, right } => {
            let Some(ir_op) = IrOp::from_binop(*op) else {
                return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(expr)));
            };
            let Expr::Column(lc) = left.as_ref() else {
                return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(expr)));
            };
            let value = match right.as_ref() {
                Expr::Literal(l) => IrValue::Lit(l.clone()),
                Expr::Column(rc) => IrValue::Column(resolve(rc)?),
                Expr::ScalarSubquery(_) => return Err(IrError::Subquery),
                other => return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other))),
            };
            Ok(IrFilter::Pred(IrPred::Cmp {
                column: resolve(lc)?,
                op: ir_op,
                value,
            }))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let Expr::Column(c) = expr.as_ref() else {
                return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(expr)));
            };
            let (Expr::Literal(lo), Expr::Literal(hi)) = (low.as_ref(), high.as_ref()) else {
                return Err(IrError::UnsupportedExpression("BETWEEN bounds".into()));
            };
            Ok(IrFilter::Pred(IrPred::Between {
                column: resolve(c)?,
                low: lo.clone(),
                high: hi.clone(),
            }))
        }
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            Err(IrError::Subquery)
        }
        other => Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other))),
    }
}

fn flatten<'a>(e: &'a Expr, op: BinOp, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary { left, op: o, right } if *o == op => {
            flatten(left, op, out);
            flatten(right, op, out);
        }
        other => out.push(other),
    }
}

fn having_of(
    expr: &Expr,
    resolve: &impl Fn(&ColumnRef) -> Result<IrColumn, IrError>,
) -> Result<(AggFunc, Option<IrColumn>, IrOp, Lit), IrError> {
    if let Expr::Binary { left, op, right } = expr {
        if let (Expr::Agg { func, arg, .. }, Expr::Literal(lit)) = (left.as_ref(), right.as_ref()) {
            let Some(ir_op) = IrOp::from_binop(*op) else {
                return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(expr)));
            };
            let column = match arg.as_deref() {
                None => None,
                Some(Expr::Column(c)) => Some(resolve(c)?),
                Some(other) => {
                    return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other)))
                }
            };
            return Ok((*func, column, ir_op, lit.clone()));
        }
    }
    Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(expr)))
}

fn order_of(
    item: &OrderItem,
    resolve: &impl Fn(&ColumnRef) -> Result<IrColumn, IrError>,
) -> Result<IrOrder, IrError> {
    match &item.expr {
        Expr::Column(c) => Ok(IrOrder {
            agg: None,
            column: Some(resolve(c)?),
            desc: item.desc,
        }),
        Expr::Agg { func, arg, .. } => {
            let column = match arg.as_deref() {
                None => None,
                Some(Expr::Column(c)) => Some(resolve(c)?),
                Some(other) => {
                    return Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other)))
                }
            };
            Ok(IrOrder {
                agg: Some(*func),
                column,
                desc: item.desc,
            })
        }
        other => Err(IrError::UnsupportedExpression(sqlkit::expr_to_sql(other))),
    }
}

fn filter_to_expr(f: &IrFilter, col: &impl Fn(&IrColumn) -> Expr) -> Expr {
    match f {
        IrFilter::Pred(IrPred::Cmp { column, op, value }) => {
            let rhs = match value {
                IrValue::Lit(l) => Expr::Literal(l.clone()),
                IrValue::Column(c) => col(c),
            };
            Expr::binary(col(column), op.to_binop(), rhs)
        }
        IrFilter::Pred(IrPred::Between { column, low, high }) => Expr::Between {
            expr: Box::new(col(column)),
            low: Box::new(Expr::Literal(low.clone())),
            high: Box::new(Expr::Literal(high.clone())),
            negated: false,
        },
        IrFilter::And(parts) => parts
            .iter()
            .map(|p| filter_to_expr(p, col))
            .reduce(Expr::and)
            .unwrap_or_else(|| Expr::boolean(true)),
        IrFilter::Or(parts) => parts
            .iter()
            .map(|p| filter_to_expr(p, col))
            .reduce(Expr::or)
            .unwrap_or_else(|| Expr::boolean(true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joinpath::JoinGraph;
    use footballdb::{generate, load, DataModel};
    use sqlengine::execute_sql;

    fn ir_of(sql: &str) -> Result<SemQl, IrError> {
        SemQl::from_query(&sqlkit::parse_query(sql).unwrap())
    }

    #[test]
    fn simple_query_roundtrips_through_ir() {
        let ir = ir_of(
            "SELECT T1.teamname FROM world_cup_result AS T1 \
             JOIN world_cup AS T2 ON T1.world_cup_id = T2.world_cup_id \
             WHERE T2.year = 2014 AND T1.winner = 'True'",
        )
        .unwrap();
        assert_eq!(ir.tables, vec!["world_cup_result", "world_cup"]);
        let graph = JoinGraph::from_catalog(&DataModel::V3.catalog());
        let sql = ir.to_sql(&graph).unwrap();
        // The reconstructed query must be executable and equivalent.
        let d = generate(7);
        let db = load(&d, DataModel::V3);
        let rs = execute_sql(&db, &sql).unwrap();
        assert_eq!(rs.rows[0][0], sqlengine::Value::text("Germany"));
    }

    #[test]
    fn set_operations_are_rejected() {
        assert_eq!(
            ir_of("SELECT a FROM t UNION SELECT a FROM u").unwrap_err(),
            IrError::SetOperation
        );
    }

    #[test]
    fn repeated_instances_are_rejected() {
        let err = ir_of(
            "SELECT T2.teamname FROM match AS T1 \
             JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
             JOIN national_team AS T3 ON T1.away_team_id = T3.team_id",
        )
        .unwrap_err();
        assert_eq!(err, IrError::RepeatedTableInstance("national_team".into()));
    }

    #[test]
    fn derived_tables_are_rejected() {
        assert_eq!(
            ir_of("SELECT n FROM (SELECT 1 AS n) AS d").unwrap_err(),
            IrError::DerivedTable
        );
    }

    #[test]
    fn subqueries_are_rejected() {
        assert_eq!(
            ir_of("SELECT a FROM t WHERE x = (SELECT max(x) FROM t)").unwrap_err(),
            IrError::Subquery
        );
    }

    #[test]
    fn v1_winner_query_fails_at_join_path() {
        // IR conversion succeeds (single table instance) but the
        // reconstruction hits the 4-reference world_cup↔national_team
        // edge — the paper's post-processing failure.
        let ir = ir_of(
            "SELECT T2.teamname FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.winner = T2.team_id WHERE T1.year = 2014",
        )
        .unwrap();
        let graph = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let err = ir.to_sql(&graph).unwrap_err();
        assert!(matches!(err, JoinPathError::AmbiguousEdge { .. }));
    }

    #[test]
    fn group_order_limit_roundtrip() {
        let ir = ir_of(
            "SELECT T3.full_name FROM goal AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             JOIN player AS T3 ON T1.player_id = T3.player_id \
             WHERE T2.year = 2014 \
             GROUP BY T3.full_name ORDER BY count(*) DESC, T3.full_name LIMIT 1",
        )
        .unwrap();
        assert_eq!(ir.group_by.len(), 1);
        assert_eq!(ir.order_by.len(), 2);
        assert_eq!(ir.limit, Some(1));
        let graph = JoinGraph::from_catalog(&DataModel::V3.catalog());
        let sql = ir.to_sql(&graph).unwrap();
        let d = generate(7);
        let db = load(&d, DataModel::V3);
        // Must execute and agree with the original.
        let orig = execute_sql(
            &db,
            "SELECT T3.full_name FROM goal AS T1 \
             JOIN match AS T2 ON T1.match_id = T2.match_id \
             JOIN player AS T3 ON T1.player_id = T3.player_id \
             WHERE T2.year = 2014 \
             GROUP BY T3.full_name ORDER BY count(*) DESC, T3.full_name LIMIT 1",
        )
        .unwrap();
        let rec = execute_sql(&db, &sql).unwrap();
        assert!(orig.matches(&rec), "orig:\n{orig}\nrec:\n{rec}");
    }

    #[test]
    fn or_filters_survive() {
        let ir = ir_of(
            "SELECT count(*) FROM plays_match \
             WHERE (teamname = 'Brazil' AND opponent_teamname = 'Italy') \
             OR (teamname = 'Italy' AND opponent_teamname = 'Brazil')",
        )
        .unwrap();
        assert!(matches!(ir.filter, Some(IrFilter::Or(_))));
    }

    #[test]
    fn having_roundtrips() {
        let ir = ir_of("SELECT teamname FROM plays_match GROUP BY teamname HAVING count(*) > 10")
            .unwrap();
        assert!(ir.having.is_some());
        let graph = JoinGraph::from_catalog(&DataModel::V3.catalog());
        let sql = ir.to_sql(&graph).unwrap();
        assert!(sql.contains("HAVING count(*) > 10"));
    }

    #[test]
    fn wildcard_projection_is_rejected() {
        assert!(matches!(
            ir_of("SELECT * FROM player").unwrap_err(),
            IrError::UnsupportedExpression(_)
        ));
    }
}
