//! `textosql` — the Text-to-SQL system framework.
//!
//! The paper's primary contribution is an evaluation of the Text-to-SQL
//! *design space* (Section 2.2): data model, language model, training
//! data size, and pre-/post-processing. This crate implements that
//! design space as composable pieces:
//!
//! * [`schema_encode`] — schema serialization with/without PK/FK keys
//!   and with/without DB content (dimension D4, Table 4's encoding row);
//! * [`linking`] — IRNet-style schema linking and ValueNet's value
//!   finder over database content;
//! * [`ir`] + [`joinpath`] — the SemQL intermediate representation and
//!   the shortest-join-path SQL reconstruction, including its
//!   single-FK-reference limitation (the mechanism behind the v1
//!   failures of Section 5.1);
//! * [`decode`] — Picard-style grammar- and schema-constrained decoding;
//! * [`retrieval`] — few-shot example retrieval under context budgets
//!   (LLaMA2's 4,096-token cap);
//! * [`capability`] — the calibrated stochastic capability model
//!   standing in for model weights (targets from Tables 5/6, difficulty
//!   multipliers for Figures 7/8, mechanistic vetoes);
//! * [`systems`] — the five evaluated systems (ValueNet, T5-Picard,
//!   T5-Picard_Keys, GPT-3.5, LLaMA2-70B) composed per Table 4;
//! * [`cost`] — the inference-latency model (Table 7);
//! * [`stage`] — pipeline-stage tags for failure attribution
//!   (`evalkit::forensics`).
//!
//! # Example
//!
//! ```
//! use textosql::joinpath::JoinGraph;
//! use footballdb::DataModel;
//!
//! // The v1 data model's match↔national_team edge carries two FK
//! // references, so the SemQL join-path algorithm cannot use it:
//! let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
//! assert!(g.shortest_path("match", "national_team").is_err());
//! // After the v2 remodeling the path exists (via a bridge table):
//! let g2 = JoinGraph::from_catalog(&DataModel::V2.catalog());
//! assert!(g2.shortest_path("match", "national_team").is_ok());
//! ```

pub mod capability;
pub mod cost;
pub mod decode;
pub mod fault;
pub mod ir;
pub mod joinpath;
pub mod linking;
pub mod prompt;
pub mod retrieval;
pub mod schema_encode;
pub mod stage;
pub mod systems;

pub use capability::{
    profile_items, profile_items_with_db, success_probabilities, target_accuracy, Budget,
    ItemProfile, SystemKind,
};
pub use cost::{latency, mean_sd, params as cost_params, CostParams};
pub use decode::{constrain, DecodeOutcome};
pub use fault::{corrupt_sql, FaultKind, FaultPlan, RetryPolicy, SimClock};
pub use ir::{IrError, SemQl};
pub use joinpath::{JoinGraph, JoinPathError};
pub use retrieval::RetrievalIndex;
pub use stage::PipelineStage;
pub use systems::{predict, predict_governed, GovernedPrediction, Prediction, SystemContext};
