//! Picard-style constrained decoding.
//!
//! Picard constrains an auto-regressive decoder to valid SQL by parsing
//! each candidate prefix incrementally and rejecting continuations that
//! cannot lead to a valid query. Our simulator applies the same *checks*
//! to candidate SQL: token-prefix validation against the grammar plus
//! schema validation of every table/column reference. It also records how
//! many prefix checks a full decode performs — the quantity that makes
//! T5-Picard's inference so slow (Table 7).

use sqlengine::Catalog;
use sqlkit::ast::{Expr, Query, SelectItem, TableRef};

/// Outcome of constrained decoding over a candidate query.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeOutcome {
    /// The candidate passed every incremental check.
    Accepted {
        /// Number of prefix re-parses performed (cost-model input).
        prefix_checks: usize,
    },
    /// The candidate was rejected (with the failing reason). A real
    /// decoder would backtrack and try another beam.
    Rejected {
        reason: String,
        prefix_checks: usize,
    },
}

impl DecodeOutcome {
    pub fn accepted(&self) -> bool {
        matches!(self, DecodeOutcome::Accepted { .. })
    }

    pub fn prefix_checks(&self) -> usize {
        match self {
            DecodeOutcome::Accepted { prefix_checks }
            | DecodeOutcome::Rejected { prefix_checks, .. } => *prefix_checks,
        }
    }
}

/// Coarse token classes for the per-step viability automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokClass {
    Keyword,
    Ident,
    Literal,
    Comma,
    Dot,
    LParen,
    RParen,
    Operator,
    Star,
    Semicolon,
}

fn classify(t: &sqlkit::Token) -> TokClass {
    use sqlkit::Token as T;
    match t {
        T::Word(w) => {
            if is_sql_keyword(w) {
                TokClass::Keyword
            } else {
                TokClass::Ident
            }
        }
        T::QuotedIdent(_) => TokClass::Ident,
        T::Str(_) | T::Int(_) | T::Float(_) => TokClass::Literal,
        T::Comma => TokClass::Comma,
        T::Dot => TokClass::Dot,
        T::LParen => TokClass::LParen,
        T::RParen => TokClass::RParen,
        T::Star => TokClass::Star,
        T::Semicolon => TokClass::Semicolon,
        T::Plus
        | T::Minus
        | T::Slash
        | T::Percent
        | T::Eq
        | T::Neq
        | T::Lt
        | T::Lte
        | T::Gt
        | T::Gte => TokClass::Operator,
    }
}

fn is_sql_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "SELECT"
            | "DISTINCT"
            | "FROM"
            | "WHERE"
            | "GROUP"
            | "BY"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "JOIN"
            | "LEFT"
            | "INNER"
            | "OUTER"
            | "ON"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "IN"
            | "EXISTS"
            | "BETWEEN"
            | "LIKE"
            | "IS"
            | "NULL"
            | "UNION"
            | "ALL"
            | "INTERSECT"
            | "EXCEPT"
            | "ASC"
            | "DESC"
            | "TRUE"
            | "FALSE"
    )
}

/// Checks whether a token *prefix* can still extend to valid SQL — the
/// per-decoding-step test Picard's incremental parser performs.
///
/// Deliberately conservative, as Picard's own checker is: a few exotic
/// shapes the full parser accepts (e.g. a literal followed by an
/// implicit alias, `SELECT 5 five`) are rejected here; constrained
/// decoders trade such recall for pruning power. Rules:
/// parenthesis depth never goes negative, the query starts with
/// `SELECT`/`(`, and locally impossible adjacencies (`,,`, `. <op>`,
/// comma before `FROM`, operator runs) are rejected immediately.
pub fn prefix_viable(tokens: &[sqlkit::Token]) -> bool {
    let mut depth: i64 = 0;
    let mut prev: Option<TokClass> = None;
    for (i, t) in tokens.iter().enumerate() {
        let c = classify(t);
        if i == 0 {
            let starts_select =
                matches!(t, sqlkit::Token::Word(w) if w.eq_ignore_ascii_case("SELECT"));
            if !(starts_select || c == TokClass::LParen) {
                return false;
            }
        }
        match c {
            TokClass::LParen => depth += 1,
            TokClass::RParen => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
        if let Some(p) = prev {
            let bad = matches!(
                (p, c),
                (TokClass::Comma, TokClass::Comma)
                    | (TokClass::Comma, TokClass::RParen)
                    | (TokClass::Dot, TokClass::Operator)
                    | (TokClass::Dot, TokClass::Comma)
                    | (TokClass::Dot, TokClass::Literal)
                    | (TokClass::Dot, TokClass::Dot)
                    | (TokClass::Operator, TokClass::Operator)
                    | (TokClass::Operator, TokClass::Comma)
                    | (TokClass::Operator, TokClass::RParen)
                    | (TokClass::Literal, TokClass::Literal)
                    | (TokClass::Literal, TokClass::Ident)
                    | (TokClass::Semicolon, _)
            );
            if bad {
                return false;
            }
            // A comma directly before FROM/WHERE etc. is dead.
            if p == TokClass::Comma && c == TokClass::Keyword {
                if let sqlkit::Token::Word(w) = t {
                    if matches!(
                        w.to_ascii_uppercase().as_str(),
                        "FROM" | "WHERE" | "GROUP" | "ORDER" | "HAVING" | "LIMIT"
                    ) {
                        return false;
                    }
                }
            }
        }
        prev = Some(c);
    }
    true
}

/// Runs the incremental Picard check over a candidate SQL string.
///
/// Token prefixes are validated step by step with [`prefix_viable`] (each
/// step counted, as each decoding step costs a re-parse); the complete
/// string must then parse, and every identifier must exist in the schema.
pub fn constrain(candidate: &str, catalog: &Catalog) -> DecodeOutcome {
    let spanned = match sqlkit::tokenize(candidate) {
        Ok(t) => t,
        Err(e) => {
            return DecodeOutcome::Rejected {
                reason: format!("lexing failed: {e}"),
                prefix_checks: 1,
            }
        }
    };
    let tokens: Vec<sqlkit::Token> = spanned.into_iter().map(|s| s.token).collect();
    let mut prefix_checks = 0usize;
    for k in 1..=tokens.len() {
        prefix_checks += 1;
        if !prefix_viable(&tokens[..k]) {
            return DecodeOutcome::Rejected {
                reason: format!("prefix of {k} tokens is not viable"),
                prefix_checks,
            };
        }
    }
    let prefix_checks = prefix_checks.max(1);

    let query = match sqlkit::parse_query(candidate) {
        Ok(q) => q,
        Err(e) => {
            return DecodeOutcome::Rejected {
                reason: format!("grammar: {e}"),
                prefix_checks,
            }
        }
    };
    match validate_schema(&query, catalog) {
        Ok(()) => DecodeOutcome::Accepted { prefix_checks },
        Err(reason) => DecodeOutcome::Rejected {
            reason,
            prefix_checks,
        },
    }
}

/// Validates every table and (qualified) column reference against the
/// schema.
pub fn validate_schema(query: &Query, catalog: &Catalog) -> Result<(), String> {
    let mut err = None;
    query.visit_selects(&mut |s| {
        if err.is_some() {
            return;
        }
        // Bindings visible in this select.
        let mut bindings: Vec<(String, Option<String>)> = Vec::new(); // (binding, base table)
        for t in s.table_refs() {
            match t {
                TableRef::Named { name, alias } => {
                    if catalog.table(name).is_none() {
                        err = Some(format!("unknown table {name:?}"));
                        return;
                    }
                    bindings.push((
                        alias.clone().unwrap_or_else(|| name.clone()),
                        Some(name.clone()),
                    ));
                }
                TableRef::Derived { alias, .. } => bindings.push((alias.clone(), None)),
            }
        }
        let check_col = |c: &sqlkit::ast::ColumnRef| -> Option<String> {
            match &c.table {
                Some(b) => {
                    let Some((_, base)) = bindings
                        .iter()
                        .find(|(bind, _)| bind.eq_ignore_ascii_case(b))
                    else {
                        return Some(format!("unknown alias {b:?}"));
                    };
                    if let Some(base) = base {
                        let t = catalog.table(base).unwrap();
                        if t.column_index(&c.column).is_none() {
                            return Some(format!("unknown column {base}.{}", c.column));
                        }
                    }
                    None
                }
                None => {
                    // Bare column: must exist in at least one bound table.
                    let found = bindings.iter().any(|(_, base)| {
                        base.as_ref()
                            .and_then(|b| catalog.table(b))
                            .is_some_and(|t| t.column_index(&c.column).is_some())
                    });
                    // Derived-table columns cannot be validated here;
                    // treat selects with derived tables leniently.
                    let has_derived = bindings.iter().any(|(_, b)| b.is_none());
                    if found || has_derived {
                        None
                    } else {
                        Some(format!("unknown column {:?}", c.column))
                    }
                }
            }
        };
        let mut visit_expr = |e: &Expr| {
            e.visit(&mut |x| {
                if err.is_none() {
                    if let Expr::Column(c) = x {
                        err = check_col(c);
                    }
                }
            });
        };
        for item in &s.projections {
            if let SelectItem::Expr { expr, .. } = item {
                visit_expr(expr);
            }
        }
        for j in &s.joins {
            if let Some(on) = &j.on {
                visit_expr(on);
            }
        }
        if let Some(w) = &s.where_clause {
            visit_expr(w);
        }
        for g in &s.group_by {
            visit_expr(g);
        }
        if let Some(h) = &s.having {
            visit_expr(h);
        }
    });
    match err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::DataModel;

    fn v1() -> Catalog {
        DataModel::V1.catalog()
    }

    #[test]
    fn accepts_valid_sql() {
        let out = constrain(
            "SELECT T2.teamname FROM world_cup AS T1 \
             JOIN national_team AS T2 ON T1.winner = T2.team_id WHERE T1.year = 2014",
            &v1(),
        );
        assert!(out.accepted());
        assert!(out.prefix_checks() > 10);
    }

    #[test]
    fn rejects_grammar_errors() {
        let out = constrain("SELECT FROM WHERE", &v1());
        assert!(!out.accepted());
    }

    #[test]
    fn rejects_unknown_tables() {
        let out = constrain("SELECT x FROM hallucinated_table", &v1());
        assert!(matches!(out, DecodeOutcome::Rejected { ref reason, .. }
            if reason.contains("hallucinated_table")));
    }

    #[test]
    fn rejects_unknown_columns() {
        let out = constrain("SELECT nonexistent_col FROM player", &v1());
        assert!(!out.accepted());
        let out = constrain("SELECT p.made_up FROM player AS p", &v1());
        assert!(!out.accepted());
    }

    #[test]
    fn rejects_unknown_alias() {
        let out = constrain("SELECT zz.full_name FROM player AS p", &v1());
        assert!(!out.accepted());
    }

    #[test]
    fn v3_columns_rejected_against_v1_schema() {
        // A model decoding v3-style SQL against the v1 schema is caught.
        let out = constrain(
            "SELECT teamname FROM plays_match WHERE team_role = 'home'",
            &v1(),
        );
        assert!(!out.accepted());
        let out = constrain(
            "SELECT teamname FROM plays_match WHERE team_role = 'home'",
            &DataModel::V3.catalog(),
        );
        assert!(out.accepted());
    }

    #[test]
    fn checks_set_operation_arms() {
        let out = constrain(
            "SELECT year FROM world_cup UNION SELECT bogus FROM world_cup",
            &v1(),
        );
        assert!(!out.accepted());
    }

    #[test]
    fn derived_table_columns_are_lenient() {
        let out = constrain(
            "SELECT n FROM (SELECT count(*) AS n FROM player) AS d WHERE n > 1",
            &v1(),
        );
        assert!(out.accepted(), "{out:?}");
    }

    fn toks(sql: &str) -> Vec<sqlkit::Token> {
        sqlkit::tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn viable_prefixes_of_valid_sql() {
        let tokens = toks(
            "SELECT T1.a, count(*) FROM t AS T1 WHERE T1.b = 'x' GROUP BY T1.a \
             ORDER BY count(*) DESC LIMIT 3",
        );
        for k in 1..=tokens.len() {
            assert!(prefix_viable(&tokens[..k]), "prefix of {k} rejected");
        }
    }

    #[test]
    fn nonviable_prefixes_rejected_early() {
        assert!(!prefix_viable(&toks("FROM t")));
        assert!(!prefix_viable(&toks("SELECT a , , b")));
        assert!(!prefix_viable(&toks("SELECT a , FROM t")));
        assert!(!prefix_viable(&toks("SELECT a = = 1")));
        assert!(!prefix_viable(&toks("SELECT a ) FROM")));
        assert!(!prefix_viable(&toks("SELECT 1 2")));
    }

    #[test]
    fn early_rejection_costs_fewer_checks() {
        let good = constrain("SELECT year FROM world_cup WHERE year = 2014", &v1());
        // The second comma kills the prefix at token 4 even though the
        // tail is long.
        let bad = constrain(
            "SELECT year , , year year year year year year year year FROM world_cup",
            &v1(),
        );
        assert!(!bad.accepted());
        assert!(
            bad.prefix_checks() < good.prefix_checks(),
            "early rejection should stop checking: {} vs {}",
            bad.prefix_checks(),
            good.prefix_checks()
        );
    }

    #[test]
    fn prefix_checks_scale_with_length() {
        let short = constrain("SELECT year FROM world_cup", &v1());
        let long = constrain(
            "SELECT year FROM world_cup WHERE year > 1950 AND year < 2000 AND num_teams = 16",
            &v1(),
        );
        assert!(long.prefix_checks() > short.prefix_checks());
    }
}
