//! Schema join graph and the SemQL shortest-join-path algorithm.
//!
//! IRNet/ValueNet reconstruct FROM clauses by finding the shortest path
//! between the tables mentioned in the intermediate representation. The
//! crucial limitation the paper builds its v1→v2 redesign on (Section
//! 5.1): the subgraph used for join-path search *only supports a single
//! primary-key/foreign-key reference between any two tables*. When two
//! tables are connected by multiple FK references (v1's `match` →
//! `national_team` twice, `world_cup` → `national_team` four times), the
//! edge is ambiguous and the join-path algorithm fails.

use sqlengine::Catalog;
use std::collections::{HashMap, VecDeque};

/// An edge in the join graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

/// Why join-path construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinPathError {
    /// A table pair is connected by more than one PK/FK reference; the
    /// SemQL subgraph cannot represent it.
    AmbiguousEdge {
        from: String,
        to: String,
        references: usize,
    },
    /// No path connects the two tables in the (single-reference) graph.
    Disconnected { from: String, to: String },
    /// A mentioned table is not in the schema.
    UnknownTable(String),
}

impl std::fmt::Display for JoinPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinPathError::AmbiguousEdge {
                from,
                to,
                references,
            } => write!(
                f,
                "tables {from:?} and {to:?} are linked by {references} FK references; \
                 the join-path subgraph supports only one"
            ),
            JoinPathError::Disconnected { from, to } => {
                write!(f, "no join path between {from:?} and {to:?}")
            }
            JoinPathError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
        }
    }
}

/// The join graph built from a catalog.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Usable single-reference edges, keyed by unordered table pair.
    edges: HashMap<(String, String), JoinEdge>,
    /// Table pairs excluded because of multiple references.
    ambiguous: HashMap<(String, String), usize>,
    tables: Vec<String>,
}

fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl JoinGraph {
    /// Builds the graph. Table pairs with multiple FK references become
    /// *ambiguous* (unusable), exactly as in the SemQL pipeline.
    pub fn from_catalog(catalog: &Catalog) -> JoinGraph {
        let mut count: HashMap<(String, String), Vec<JoinEdge>> = HashMap::new();
        for t in &catalog.tables {
            for fk in &t.foreign_keys {
                let e = JoinEdge {
                    from_table: t.name.clone(),
                    from_column: fk.columns[0].clone(),
                    to_table: fk.ref_table.clone(),
                    to_column: fk.ref_columns[0].clone(),
                };
                count
                    .entry(pair(&t.name, &fk.ref_table))
                    .or_default()
                    .push(e);
            }
        }
        let mut edges = HashMap::new();
        let mut ambiguous = HashMap::new();
        for (k, v) in count {
            if v.len() == 1 {
                edges.insert(k, v.into_iter().next().unwrap());
            } else {
                ambiguous.insert(k, v.len());
            }
        }
        JoinGraph {
            edges,
            ambiguous,
            tables: catalog.tables.iter().map(|t| t.name.clone()).collect(),
        }
    }

    pub fn has_table(&self, t: &str) -> bool {
        self.tables.iter().any(|x| x.eq_ignore_ascii_case(t))
    }

    /// Neighbors reachable over usable edges.
    fn neighbors<'a>(&'a self, t: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.edges.keys().filter_map(move |(a, b)| {
            if a == t {
                Some(b.as_str())
            } else if b == t {
                Some(a.as_str())
            } else {
                None
            }
        })
    }

    /// The edge between two adjacent tables, if usable.
    pub fn edge(&self, a: &str, b: &str) -> Option<&JoinEdge> {
        self.edges.get(&pair(a, b))
    }

    /// Shortest join path (sequence of tables) between two tables.
    ///
    /// Fails with [`JoinPathError::AmbiguousEdge`] when the *direct* pair
    /// is multiply-referenced (the failure the paper describes), and with
    /// `Disconnected` when no single-reference path exists at all.
    pub fn shortest_path(&self, from: &str, to: &str) -> Result<Vec<String>, JoinPathError> {
        if !self.has_table(from) {
            return Err(JoinPathError::UnknownTable(from.to_string()));
        }
        if !self.has_table(to) {
            return Err(JoinPathError::UnknownTable(to.to_string()));
        }
        if from.eq_ignore_ascii_case(to) {
            return Ok(vec![from.to_string()]);
        }
        // The SemQL pipeline gives up when the pair itself is ambiguous,
        // even if a detour exists — the graph construction has already
        // dropped the information which reference was meant.
        if let Some(n) = self.ambiguous.get(&pair(from, to)) {
            return Err(JoinPathError::AmbiguousEdge {
                from: from.to_string(),
                to: to.to_string(),
                references: *n,
            });
        }
        // BFS.
        let mut prev: HashMap<String, String> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from.to_string());
        prev.insert(from.to_string(), String::new());
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                let mut path = vec![cur.clone()];
                let mut node = cur;
                while let Some(p) = prev.get(&node) {
                    if p.is_empty() {
                        break;
                    }
                    path.push(p.clone());
                    node = p.clone();
                }
                path.reverse();
                return Ok(path);
            }
            let neighbors: Vec<String> = self.neighbors(&cur).map(|s| s.to_string()).collect();
            for n in neighbors {
                if !prev.contains_key(&n) {
                    prev.insert(n.clone(), cur.clone());
                    queue.push_back(n);
                }
            }
        }
        Err(JoinPathError::Disconnected {
            from: from.to_string(),
            to: to.to_string(),
        })
    }

    /// Connects a set of tables into one join tree (greedy: path-merge in
    /// the given order). Returns the ordered list of edges to emit.
    pub fn join_tree(&self, tables: &[String]) -> Result<Vec<JoinEdge>, JoinPathError> {
        let mut connected: Vec<String> = Vec::new();
        let mut out = Vec::new();
        for t in tables {
            if connected.iter().any(|c| c.eq_ignore_ascii_case(t)) {
                continue;
            }
            if connected.is_empty() {
                connected.push(t.clone());
                continue;
            }
            // Shortest path from any connected table.
            let mut best: Option<Vec<String>> = None;
            let mut first_err = None;
            for c in &connected {
                match self.shortest_path(c, t) {
                    Ok(p) => {
                        if best.as_ref().is_none_or(|b| p.len() < b.len()) {
                            best = Some(p);
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            let path = match best {
                Some(p) => p,
                None => return Err(first_err.unwrap()),
            };
            for w in path.windows(2) {
                let e = self.edge(&w[0], &w[1]).expect("path edges exist").clone();
                out.push(e);
                if !connected.contains(&w[1]) {
                    connected.push(w[1].clone());
                }
            }
        }
        Ok(out)
    }

    /// The ambiguous pairs (diagnostics / ablation reporting).
    pub fn ambiguous_pairs(&self) -> Vec<(String, String, usize)> {
        let mut v: Vec<_> = self
            .ambiguous
            .iter()
            .map(|((a, b), n)| (a.clone(), b.clone(), *n))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::DataModel;

    #[test]
    fn v1_match_to_national_team_is_ambiguous() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let err = g.shortest_path("match", "national_team").unwrap_err();
        assert!(matches!(
            err,
            JoinPathError::AmbiguousEdge { references: 2, .. }
        ));
        let err = g.shortest_path("world_cup", "national_team").unwrap_err();
        assert!(matches!(
            err,
            JoinPathError::AmbiguousEdge { references: 4, .. }
        ));
    }

    #[test]
    fn v2_match_to_national_team_has_a_path() {
        let g = JoinGraph::from_catalog(&DataModel::V2.catalog());
        let p = g.shortest_path("match", "national_team").unwrap();
        // Path goes through one of the bridge tables.
        assert_eq!(p.len(), 3);
        assert!(p[1] == "plays_as_home" || p[1] == "plays_as_away");
    }

    #[test]
    fn v3_plays_match_to_national_team_is_ambiguous_but_named() {
        // plays_match carries two FK references to national_team (team
        // and opponent) — the pair is ambiguous for path *search*, but v3
        // queries don't need path search: they filter on the denormalized
        // teamname columns.
        let g = JoinGraph::from_catalog(&DataModel::V3.catalog());
        assert!(g.shortest_path("plays_match", "national_team").is_err());
        assert!(g.shortest_path("plays_match", "match").is_ok());
    }

    #[test]
    fn direct_single_edges_work() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let p = g.shortest_path("goal", "player").unwrap();
        assert_eq!(p, vec!["goal".to_string(), "player".to_string()]);
    }

    #[test]
    fn multi_hop_paths_work() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        // goal → match → world_cup.
        let p = g.shortest_path("goal", "world_cup").unwrap();
        assert_eq!(
            p,
            vec![
                "goal".to_string(),
                "match".to_string(),
                "world_cup".to_string()
            ]
        );
    }

    #[test]
    fn same_table_path_is_trivial() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        assert_eq!(g.shortest_path("player", "player").unwrap().len(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        assert!(matches!(
            g.shortest_path("nope", "player"),
            Err(JoinPathError::UnknownTable(_))
        ));
    }

    #[test]
    fn disconnected_tables_error() {
        // stadium connects via match only; league has no declared FK
        // edges at all in v1, so league ↔ stadium is disconnected.
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        assert!(matches!(
            g.shortest_path("league", "stadium"),
            Err(JoinPathError::Disconnected { .. })
        ));
    }

    #[test]
    fn join_tree_spans_multiple_tables() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let edges = g
            .join_tree(&["goal".into(), "player".into(), "world_cup".into()])
            .unwrap();
        // goal-player, goal-match, match-world_cup.
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn join_tree_propagates_ambiguity() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let err = g
            .join_tree(&["match".into(), "national_team".into()])
            .unwrap_err();
        assert!(matches!(err, JoinPathError::AmbiguousEdge { .. }));
    }

    #[test]
    fn ambiguous_pairs_reported() {
        let g = JoinGraph::from_catalog(&DataModel::V1.catalog());
        let pairs = g.ambiguous_pairs();
        assert_eq!(pairs.len(), 2);
    }
}
