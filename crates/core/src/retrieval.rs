//! Few-shot example retrieval with token budgets.
//!
//! LLM systems build their prompt from the schema encoding plus retrieved
//! NL/SQL examples. LLaMA2-70B's 4,096-token context (paper footnote 2)
//! caps how many shots fit — the mechanism behind its 2/4/8-shot rows in
//! Table 6 versus GPT-3.5's 10/20/30.

use crate::schema_encode::approx_tokens;
use footballdb::DataModel;
use nlq::embed::{cosine, embed, Embedding};
use nlq::GoldExample;

/// A retrieval index over training examples.
pub struct RetrievalIndex<'a> {
    examples: &'a [GoldExample],
    embeddings: Vec<Embedding>,
}

impl<'a> RetrievalIndex<'a> {
    pub fn build(examples: &'a [GoldExample]) -> Self {
        let embeddings = examples.iter().map(|e| embed(&e.question)).collect();
        RetrievalIndex {
            examples,
            embeddings,
        }
    }

    pub fn len(&self) -> usize {
        self.examples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Indices of the `k` most similar examples to the question, most
    /// similar first.
    pub fn top_k(&self, question: &str, k: usize) -> Vec<usize> {
        let q = embed(question);
        let mut scored: Vec<(usize, f32)> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i, cosine(&q, e)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(i, _)| i).collect()
    }

    /// Similarity of the best match.
    pub fn best_similarity(&self, question: &str) -> f32 {
        let q = embed(question);
        self.embeddings
            .iter()
            .map(|e| cosine(&q, e))
            .fold(f32::MIN, f32::max)
    }

    /// Retrieves up to `want` shots, stopping early when the running
    /// prompt (schema + shots + question) would exceed `token_budget`.
    /// Returns the selected indices and the resulting prompt tokens.
    pub fn shots_within_budget(
        &self,
        question: &str,
        model: DataModel,
        want: usize,
        schema_tokens: usize,
        token_budget: usize,
    ) -> (Vec<usize>, usize) {
        let mut used = schema_tokens + approx_tokens(question) + 64; // instruction overhead
        let mut out = Vec::new();
        for i in self.top_k(question, want) {
            let e = &self.examples[i];
            let cost = approx_tokens(&e.question) + approx_tokens(e.sql(model)) + 8;
            if used + cost > token_budget {
                break;
            }
            used += cost;
            out.push(i);
        }
        (out, used)
    }

    pub fn example(&self, i: usize) -> &GoldExample {
        &self.examples[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_examples() -> Vec<GoldExample> {
        let qs = [
            ("Who won the world cup in 2014?", "winner"),
            ("Who won the world cup in 1998?", "winner"),
            ("Which club does Carlos Silva play for?", "club"),
            ("How many red cards did Brazil get in 1994?", "cards"),
            ("Which stadium hosted the 2006 final?", "stadium"),
        ];
        qs.iter()
            .enumerate()
            .map(|(i, (q, t))| GoldExample {
                id: i,
                question: q.to_string(),
                sql: [
                    format!("SELECT {i} FROM a"),
                    format!("SELECT {i} FROM b"),
                    format!("SELECT {i} FROM c"),
                ],
                topic: t,
            })
            .collect()
    }

    #[test]
    fn top_k_returns_most_similar_first() {
        let ex = make_examples();
        let idx = RetrievalIndex::build(&ex);
        let top = idx.top_k("Who won the world cup in 2010?", 2);
        assert_eq!(top.len(), 2);
        assert!(ex[top[0]].topic == "winner");
        assert!(ex[top[1]].topic == "winner");
    }

    #[test]
    fn best_similarity_is_high_for_near_duplicates() {
        let ex = make_examples();
        let idx = RetrievalIndex::build(&ex);
        assert!(idx.best_similarity("Who won the world cup in 2014?") > 0.99);
        assert!(idx.best_similarity("completely unrelated banana question") < 0.3);
    }

    #[test]
    fn budget_limits_shots() {
        let ex = make_examples();
        let idx = RetrievalIndex::build(&ex);
        // Generous budget: all 5 fit.
        let (all, _) = idx.shots_within_budget("Who won in 2014?", DataModel::V1, 5, 100, 4096);
        assert_eq!(all.len(), 5);
        // Tight budget: schema eats almost everything.
        let (few, used) = idx.shots_within_budget("Who won in 2014?", DataModel::V1, 5, 4000, 4096);
        assert!(few.len() < 5);
        assert!(used <= 4096);
    }

    #[test]
    fn zero_budget_returns_no_shots() {
        let ex = make_examples();
        let idx = RetrievalIndex::build(&ex);
        let (none, _) = idx.shots_within_budget("q", DataModel::V1, 5, 0, 10);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_index_is_fine() {
        let ex: Vec<GoldExample> = Vec::new();
        let idx = RetrievalIndex::build(&ex);
        assert!(idx.is_empty());
        assert!(idx.top_k("q", 3).is_empty());
    }
}
