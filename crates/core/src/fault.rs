//! Seeded fault injection and retry governance for the predict boundary.
//!
//! Real Text-to-SQL deployments fail in ways the clean simulation never
//! exercises: providers truncate generations, emit syntactically broken
//! SQL, hallucinate identifiers from the wrong schema, return nothing,
//! or throw transient errors that succeed on retry. A [`FaultPlan`]
//! injects exactly this taxonomy at the [`crate::predict`] boundary,
//! deterministically: every draw comes from an [`xrng`] stream forked by
//! `(seed, system, question_id)`, so a fault plan replays bit-identically
//! at any thread count and on any machine.
//!
//! **Monotonicity by construction.** For a fixed seed, the set of faulted
//! questions at rate `r₁` is a subset of the set at rate `r₂ > r₁`: the
//! fault decision compares one rate-independent uniform draw `u` against
//! the rate (`u < r`), so raising the rate only ever adds faults, and
//! the injected *kind* (a second, independent draw) does not change.
//! Likewise a transient fault that recovers on retry at a higher rate
//! also recovers at any lower rate (each attempt recovers iff `v ≥ r`).
//! Since every fault maps an outcome to {unchanged, failure} and never
//! to a success, execution accuracy is exactly — not just statistically
//! — non-increasing in the fault rate. The chaos driver asserts this.
//!
//! **Simulated clock.** Retry backoff never sleeps: delays (exponential
//! with seeded jitter) accumulate on a [`SimClock`] and are added to the
//! prediction's simulated latency, keeping runs deterministic and fast.

use crate::capability::SystemKind;
use xrng::Rng;

/// The injectable failure taxonomy, mirroring the error classes the
/// paper reports for real systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The provider cut the generation mid-token: the SQL is a prefix.
    TruncatedSql,
    /// Syntactically invalid output (unparseable token salad).
    InvalidSql,
    /// Identifiers from a schema the question was never asked against.
    WrongSchema,
    /// The provider returned an empty generation.
    EmptyOutput,
    /// A transient provider error: retryable, may recover.
    Transient,
}

impl FaultKind {
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TruncatedSql,
        FaultKind::InvalidSql,
        FaultKind::WrongSchema,
        FaultKind::EmptyOutput,
        FaultKind::Transient,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncatedSql => "truncated_sql",
            FaultKind::InvalidSql => "invalid_sql",
            FaultKind::WrongSchema => "wrong_schema",
            FaultKind::EmptyOutput => "empty_output",
            FaultKind::Transient => "transient",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic fault schedule keyed by `(seed, system, question)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability that a given (system, question) prediction is faulted.
    pub rate: f64,
    /// Probability that the worker evaluating a (system, question) panics
    /// outright — exercises the harness's panic isolation. Drawn from an
    /// independent stream, so panic sets are also nested across rates.
    pub panic_rate: f64,
}

impl FaultPlan {
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            panic_rate: 0.0,
        }
    }

    pub fn with_panic_rate(mut self, panic_rate: f64) -> FaultPlan {
        self.panic_rate = panic_rate;
        self
    }

    /// The fault (if any) for this system/question pair. The uniform
    /// draw and the kind draw are rate-independent, which is what makes
    /// fault sets nested across rates (see module docs).
    pub fn draw(&self, system: SystemKind, question_id: usize) -> Option<FaultKind> {
        let mut rng = Rng::new(self.seed).fork(&format!("fault/{system}/{question_id}"));
        let u = rng.f64();
        let kind = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
        (u < self.rate).then_some(kind)
    }

    /// Whether the worker for this system/question pair panics.
    pub fn draws_panic(&self, system: SystemKind, question_id: usize) -> bool {
        let mut rng = Rng::new(self.seed).fork(&format!("panic/{system}/{question_id}"));
        rng.f64() < self.panic_rate
    }

    /// The injection stream for this pair: SQL corruption choices and
    /// retry jitter draw from here. Separate from the decision streams
    /// so consuming it never perturbs *which* questions are faulted.
    pub fn injection_rng(&self, system: SystemKind, question_id: usize) -> Rng {
        Rng::new(self.seed).fork(&format!("inject/{system}/{question_id}"))
    }
}

/// Exponential-backoff retry schedule for [`FaultKind::Transient`]
/// faults. All delays are simulated seconds on a [`SimClock`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    pub max_retries: u32,
    pub base_delay_s: f64,
    pub multiplier: f64,
    pub max_delay_s: f64,
    /// Each delay is scaled by `1 ± jitter` with a seeded uniform draw.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay_s: 0.5,
            multiplier: 2.0,
            max_delay_s: 8.0,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The (jittered, capped) delay before retry attempt `attempt`
    /// (0-based). Deterministic given the caller's rng state.
    pub fn delay_s(&self, attempt: u32, rng: &mut Rng) -> f64 {
        let raw = self.base_delay_s * self.multiplier.powi(attempt as i32);
        let capped = raw.min(self.max_delay_s);
        let scale = 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
        capped * scale
    }
}

/// A simulated wall clock: time advances only by explicit increments,
/// never by sleeping, so backoff is free and bit-deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    pub fn advance(&mut self, seconds: f64) {
        self.now_s += seconds;
    }

    pub fn now_s(&self) -> f64 {
        self.now_s
    }
}

/// Applies a non-transient fault's corruption to a prediction's SQL.
/// `Transient` is handled by the retry loop, not here.
pub fn corrupt_sql(kind: FaultKind, sql: Option<String>, rng: &mut Rng) -> Option<String> {
    match kind {
        FaultKind::EmptyOutput => None,
        FaultKind::InvalidSql => {
            // A trailing dangling operator defeats any parser without
            // depending on what the prediction looked like.
            Some(format!("{} WHERE AND", sql.as_deref().unwrap_or("SELECT")))
        }
        FaultKind::TruncatedSql => sql.map(|s| {
            // Cut at 35–65% of the text, snapped to a char boundary.
            let frac = 0.35 + 0.3 * rng.f64();
            let mut cut = (s.len() as f64 * frac) as usize;
            while cut > 0 && !s.is_char_boundary(cut) {
                cut -= 1;
            }
            s[..cut].to_string()
        }),
        FaultKind::WrongSchema => {
            // Identifiers from a schema that exists nowhere in the
            // benchmark: executes as an unknown-table resolution error.
            let ghost = *rng.choose(&["warehouse_fact", "dim_customer", "order_lines"]);
            Some(format!("SELECT revenue FROM {ghost} WHERE region = 'EMEA'"))
        }
        FaultKind::Transient => sql,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_keyed() {
        let plan = FaultPlan::new(7, 0.5);
        for qid in 0..50 {
            assert_eq!(
                plan.draw(SystemKind::Gpt35, qid),
                plan.draw(SystemKind::Gpt35, qid)
            );
        }
        // Different systems see different fault sets (with overwhelming
        // probability over 200 questions).
        let a: Vec<_> = (0..200).map(|q| plan.draw(SystemKind::Gpt35, q)).collect();
        let b: Vec<_> = (0..200).map(|q| plan.draw(SystemKind::Llama2, q)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_sets_are_nested_across_rates() {
        let lo = FaultPlan::new(3, 0.15);
        let hi = FaultPlan::new(3, 0.6);
        let mut lo_count = 0;
        for qid in 0..400 {
            for &sys in &SystemKind::ALL {
                let l = lo.draw(sys, qid);
                let h = hi.draw(sys, qid);
                if let Some(k) = l {
                    lo_count += 1;
                    assert_eq!(h, Some(k), "fault at low rate must persist at high rate");
                }
            }
        }
        assert!(lo_count > 0, "low rate drew no faults at all");
    }

    #[test]
    fn panic_draws_are_independent_of_fault_draws() {
        let plan = FaultPlan::new(5, 0.3).with_panic_rate(0.3);
        let faults: Vec<bool> = (0..300)
            .map(|q| plan.draw(SystemKind::ValueNet, q).is_some())
            .collect();
        let panics: Vec<bool> = (0..300)
            .map(|q| plan.draws_panic(SystemKind::ValueNet, q))
            .collect();
        assert_ne!(faults, panics);
        assert!(panics.iter().any(|&p| p));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy::default();
        let plan = FaultPlan::new(1, 1.0);
        let mut r1 = plan.injection_rng(SystemKind::Gpt35, 9);
        let mut r2 = plan.injection_rng(SystemKind::Gpt35, 9);
        for attempt in 0..6 {
            let d1 = policy.delay_s(attempt, &mut r1);
            let d2 = policy.delay_s(attempt, &mut r2);
            assert_eq!(d1.to_bits(), d2.to_bits(), "jitter must be seeded");
            assert!(d1 <= policy.max_delay_s * (1.0 + policy.jitter) + 1e-9);
            assert!(d1 >= 0.0);
        }
    }

    #[test]
    fn corruptions_break_sql_the_advertised_way() {
        let plan = FaultPlan::new(11, 1.0);
        let mut rng = plan.injection_rng(SystemKind::T5Picard, 0);
        let sql = Some("SELECT name FROM team WHERE team_id = 1".to_string());
        assert_eq!(
            corrupt_sql(FaultKind::EmptyOutput, sql.clone(), &mut rng),
            None
        );
        let invalid = corrupt_sql(FaultKind::InvalidSql, sql.clone(), &mut rng).unwrap();
        assert!(sqlkit::parse_query(&invalid).is_err());
        let truncated = corrupt_sql(FaultKind::TruncatedSql, sql.clone(), &mut rng).unwrap();
        assert!(truncated.len() < sql.as_ref().unwrap().len());
        let wrong = corrupt_sql(FaultKind::WrongSchema, sql.clone(), &mut rng).unwrap();
        assert!(
            sqlkit::parse_query(&wrong).is_ok(),
            "wrong-schema SQL parses"
        );
        assert_eq!(
            corrupt_sql(FaultKind::Transient, sql.clone(), &mut rng),
            sql
        );
    }

    #[test]
    fn sim_clock_accumulates() {
        let mut clock = SimClock::new();
        clock.advance(0.5);
        clock.advance(1.25);
        assert!((clock.now_s() - 1.75).abs() < 1e-12);
    }
}
