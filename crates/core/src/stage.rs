//! Pipeline-stage tags for failure attribution.
//!
//! The forensics layer (`evalkit::forensics`) maps every failed item —
//! clause-diff classes for `wrong_result` items, failure kinds for the
//! rest — onto the stage of the text-to-SQL pipeline that most plausibly
//! produced it. The stages mirror the system composition in [`crate`]:
//! schema linking ([`crate::linking`]), join-path inference
//! ([`crate::joinpath`]), constrained decoding ([`crate::decode`]), the
//! model/provider boundary, and downstream query execution.

/// The pipeline stage a failure is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PipelineStage {
    /// Schema/value linking: wrong table, column, or literal chosen from
    /// database content (value-linking misses land here).
    SchemaLinking,
    /// Join-path inference: right tables, wrong way of connecting them —
    /// or runaway joins that blow the fuel budget.
    JoinPath,
    /// Decoding/generation: malformed SQL, dropped or invented clauses
    /// that no linking step is responsible for.
    Decoding,
    /// The model/provider boundary: no SQL produced, provider errors,
    /// or a panic isolated by the harness.
    Provider,
    /// Query execution: resource exhaustion and engine-side errors that
    /// are not attributable to a specific upstream stage.
    Execution,
}

impl PipelineStage {
    pub const ALL: [PipelineStage; 5] = [
        PipelineStage::SchemaLinking,
        PipelineStage::JoinPath,
        PipelineStage::Decoding,
        PipelineStage::Provider,
        PipelineStage::Execution,
    ];

    /// Stable snake_case name used in JSON sections and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::SchemaLinking => "schema_linking",
            PipelineStage::JoinPath => "join_path",
            PipelineStage::Decoding => "decoding",
            PipelineStage::Provider => "provider",
            PipelineStage::Execution => "execution",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ordered_like_all() {
        let names: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        let mut sorted = PipelineStage::ALL;
        sorted.sort();
        assert_eq!(sorted, PipelineStage::ALL);
    }
}
