//! Schema serialization for model input.
//!
//! Table 4's "DB Schema w/ FK" dimension: every system receives the
//! schema, but T5-Picard's original encoding omits the PK/FK constraints
//! while T5-Picard_Keys, ValueNet, and the LLM prompts include them. The
//! token length of the encoding feeds the few-shot budget (LLaMA2's 4096
//! limit) and the inference-time model.

use sqlengine::{Catalog, Database};
use std::fmt::Write;

/// Encoding options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Include primary/foreign key constraints.
    pub with_keys: bool,
    /// Include a few sample values per column (ValueNet-style DB
    /// content; LLM prompts with sample rows).
    pub with_content: bool,
    /// Sample values per column when `with_content`.
    pub content_samples: usize,
}

impl EncodeOptions {
    pub const SCHEMA_ONLY: EncodeOptions = EncodeOptions {
        with_keys: false,
        with_content: false,
        content_samples: 0,
    };
    pub const WITH_KEYS: EncodeOptions = EncodeOptions {
        with_keys: true,
        with_content: false,
        content_samples: 0,
    };
    pub const FULL: EncodeOptions = EncodeOptions {
        with_keys: true,
        with_content: true,
        content_samples: 3,
    };
}

/// Serializes a schema (optionally with content samples) into the flat
/// text form models consume.
pub fn encode_schema(catalog: &Catalog, db: Option<&Database>, opts: EncodeOptions) -> String {
    let mut out = String::with_capacity(1024);
    for t in &catalog.tables {
        let _ = write!(out, "table {} (", t.name);
        for (i, c) in t.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {}", c.name, c.ty);
        }
        out.push(')');
        if opts.with_keys {
            if !t.primary_key.is_empty() {
                let _ = write!(out, " primary key ({})", t.primary_key.join(", "));
            }
            for fk in &t.foreign_keys {
                let _ = write!(
                    out,
                    " foreign key ({}) references {} ({})",
                    fk.columns.join(", "),
                    fk.ref_table,
                    fk.ref_columns.join(", ")
                );
            }
        }
        out.push('\n');
        if opts.with_content {
            if let Some(db) = db {
                if let Some(rows) = db.rows(&t.name) {
                    for row in rows.iter().take(opts.content_samples) {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        let _ = writeln!(out, "  row: {}", cells.join(", "));
                    }
                }
            }
        }
    }
    out
}

/// Approximate LM token count of a text (≈ 4 characters per token, the
/// usual BPE rule of thumb used for budget accounting).
pub fn approx_tokens(text: &str) -> usize {
    text.chars().count().div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::{generate, load, DataModel};

    #[test]
    fn keys_are_included_only_when_asked() {
        let cat = DataModel::V1.catalog();
        let without = encode_schema(&cat, None, EncodeOptions::SCHEMA_ONLY);
        let with = encode_schema(&cat, None, EncodeOptions::WITH_KEYS);
        assert!(!without.contains("foreign key"));
        assert!(with.contains("foreign key"));
        assert!(with.contains("primary key"));
        assert!(with.len() > without.len());
    }

    #[test]
    fn content_samples_appear() {
        let d = generate(7);
        let db = load(&d, DataModel::V1);
        let enc = encode_schema(db.catalog(), Some(&db), EncodeOptions::FULL);
        assert!(enc.contains("row:"));
        assert!(enc.contains("Brazil") || enc.contains("Argentina"));
    }

    #[test]
    fn all_tables_listed() {
        for m in DataModel::ALL {
            let cat = m.catalog();
            let enc = encode_schema(&cat, None, EncodeOptions::WITH_KEYS);
            for t in &cat.tables {
                assert!(
                    enc.contains(&format!("table {} ", t.name)),
                    "{m}: {}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn token_estimate_scales_with_length() {
        assert_eq!(approx_tokens(""), 0);
        assert_eq!(approx_tokens("abcd"), 1);
        assert_eq!(approx_tokens("abcde"), 2);
        let cat = DataModel::V3.catalog();
        let enc = encode_schema(&cat, None, EncodeOptions::WITH_KEYS);
        assert!(approx_tokens(&enc) > 200);
    }
}
