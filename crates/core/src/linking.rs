//! Schema linking and the ValueNet value finder.
//!
//! Schema linking connects question tokens to tables and columns (IRNet).
//! The value finder (ValueNet's core contribution) additionally searches
//! the *database content* for entities mentioned in the question — team
//! names, player names, years — producing `(table, column, value)`
//! candidates even when the value is not a verbatim schema term.
//!
//! The lexicon includes the lexical-gap phrases the paper discusses
//! (Section 5.2): users say "second place" or "lost in the final" while
//! the v2 `prize` column stores `runner-up`.

use crate::schema_encode::approx_tokens;
use nlq::embed::tokenize;
use sqlengine::{Database, Value};

/// A schema-linking hit: a question span matched a table or column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaLink {
    Table { name: String },
    Column { table: String, column: String },
}

/// A value-finder hit: a question span matched database content.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueLink {
    pub table: String,
    pub column: String,
    pub value: Value,
    /// Number of question tokens the span covers (longer = stronger).
    pub span: usize,
}

/// Phrases users employ for schema concepts (the lexical gap).
const LEXICON: &[(&str, &str)] = &[
    ("second place", "runner_up"),
    ("lost in the final", "runner_up"),
    ("came second", "runner_up"),
    ("runner-up", "runner_up"),
    ("runner up", "runner_up"),
    ("champion", "winner"),
    ("won", "winner"),
    ("winner", "winner"),
    ("third", "third"),
    ("fourth", "fourth"),
    ("coach", "coach"),
    ("club", "club"),
    ("league", "league"),
    ("stadium", "stadium"),
    ("attendance", "attendance"),
    ("crowd", "attendance"),
    ("red card", "card_type"),
    ("yellow card", "card_type"),
    ("goals", "goals"),
    ("scored", "goal"),
    ("tallest", "height_cm"),
    ("height", "height_cm"),
    ("referee", "referee"),
];

/// Links question tokens to schema elements by name matching plus the
/// lexicon.
pub fn schema_links(question: &str, db: &Database) -> Vec<SchemaLink> {
    let q = question.to_lowercase();
    let tokens = tokenize(question);
    let mut out = Vec::new();
    for t in &db.catalog().tables {
        let tname = t.name.replace('_', " ");
        if q.contains(&tname) || tokens.contains(&t.name) {
            out.push(SchemaLink::Table {
                name: t.name.clone(),
            });
        }
        for c in &t.columns {
            let cname = c.name.replace('_', " ");
            if cname.len() > 2 && q.contains(&cname) {
                out.push(SchemaLink::Column {
                    table: t.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
    }
    // Lexicon-driven links.
    for (phrase, concept) in LEXICON {
        if q.contains(phrase) {
            for t in &db.catalog().tables {
                if t.name == *concept {
                    out.push(SchemaLink::Table {
                        name: t.name.clone(),
                    });
                }
                for c in &t.columns {
                    if c.name == *concept {
                        out.push(SchemaLink::Column {
                            table: t.name.clone(),
                            column: c.name.clone(),
                        });
                    }
                }
            }
        }
    }
    out.dedup();
    out
}

/// Columns the value finder scans for content matches (text entities).
const ENTITY_COLUMNS: &[(&str, &str)] = &[
    ("national_team", "teamname"),
    ("player", "full_name"),
    ("club", "name"),
    ("league", "name"),
    ("stadium", "name"),
    ("coach", "name"),
    ("world_cup", "host_country"),
];

/// Finds database values mentioned in the question: multi-token entity
/// names (longest match wins) and literal years.
pub fn find_values(question: &str, db: &Database) -> Vec<ValueLink> {
    let q_lower = question.to_lowercase();
    let mut out: Vec<ValueLink> = Vec::new();

    for (table, column) in ENTITY_COLUMNS {
        let Some(schema) = db.schema(table) else {
            continue;
        };
        let Some(ci) = schema.column_index(column) else {
            continue;
        };
        let Some(rows) = db.rows(table) else { continue };
        let mut seen = std::collections::HashSet::new();
        for row in rows {
            if let Value::Text(name) = &row[ci] {
                if name.len() < 3 || !seen.insert(name.clone()) {
                    continue;
                }
                if q_lower.contains(&name.to_lowercase()) {
                    out.push(ValueLink {
                        table: table.to_string(),
                        column: column.to_string(),
                        value: Value::text(name.clone()),
                        span: name.split_whitespace().count(),
                    });
                }
            }
        }
    }

    // Years.
    for tok in tokenize(question) {
        if tok.len() == 4 {
            if let Ok(y) = tok.parse::<i64>() {
                if (1900..=2100).contains(&y) {
                    out.push(ValueLink {
                        table: "world_cup".into(),
                        column: "year".into(),
                        value: Value::Int(y),
                        span: 1,
                    });
                }
            }
        }
    }

    // Longest spans first, as ValueNet ranks candidates.
    out.sort_by(|a, b| b.span.cmp(&a.span).then_with(|| a.table.cmp(&b.table)));
    out
}

/// Estimated input-token cost of pre-processing output (question +
/// links + values), used by the cost model.
pub fn linking_tokens(question: &str, links: &[SchemaLink], values: &[ValueLink]) -> usize {
    approx_tokens(question) + links.len() * 3 + values.len() * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use footballdb::{generate, load, DataModel};

    fn v1_db() -> Database {
        load(&generate(7), DataModel::V1)
    }

    #[test]
    fn finds_team_names_in_content() {
        let db = v1_db();
        let values = find_values(
            "What was the score between Germany and Brazil in 2014?",
            &db,
        );
        let teams: Vec<&Value> = values
            .iter()
            .filter(|v| v.table == "national_team")
            .map(|v| &v.value)
            .collect();
        assert!(teams.contains(&&Value::text("Germany")));
        assert!(teams.contains(&&Value::text("Brazil")));
    }

    #[test]
    fn finds_years() {
        let db = v1_db();
        let values = find_values("Who won the world cup in 2014?", &db);
        assert!(values
            .iter()
            .any(|v| v.column == "year" && v.value == Value::Int(2014)));
    }

    #[test]
    fn ignores_non_year_numbers() {
        let db = v1_db();
        let values = find_values("Show me the top 10 scorers", &db);
        assert!(!values.iter().any(|v| v.column == "year"));
    }

    #[test]
    fn finds_multi_word_entities_with_long_spans_first() {
        let db = v1_db();
        let values = find_values("How many world cups did the Soviet Union play in?", &db);
        let first_team = values.iter().find(|v| v.table == "national_team").unwrap();
        assert_eq!(first_team.value, Value::text("Soviet Union"));
        assert_eq!(first_team.span, 2);
    }

    #[test]
    fn schema_links_find_tables_and_columns() {
        let db = v1_db();
        let links = schema_links("Which stadium had the highest attendance?", &db);
        assert!(links.contains(&SchemaLink::Table {
            name: "stadium".into()
        }));
        assert!(links
            .iter()
            .any(|l| matches!(l, SchemaLink::Column { column, .. } if column == "attendance")));
    }

    #[test]
    fn lexicon_bridges_second_place_to_runner_up() {
        let d = generate(7);
        let v2 = load(&d, DataModel::V2);
        let links = schema_links("Who came in second place in 2014?", &v2);
        // v1/v2 has a runner_up column only in v1's world_cup; in v2 the
        // concept lives in the prize values, so the link set may be
        // empty there — check v1 instead, where the column exists.
        let v1 = load(&d, DataModel::V1);
        let links_v1 = schema_links("Who finished second place in 2014?", &v1);
        assert!(links_v1
            .iter()
            .any(|l| matches!(l, SchemaLink::Column { column, .. } if column == "runner_up")));
        drop(links);
    }

    #[test]
    fn linking_token_estimate_is_positive() {
        let db = v1_db();
        let q = "Who won the world cup in 2014?";
        let links = schema_links(q, &db);
        let values = find_values(q, &db);
        assert!(linking_tokens(q, &links, &values) > 5);
    }
}
