//! Prompt construction for the LLM systems.
//!
//! The paper prepares zero-/few-shot Text-to-SQL prompts "incorporating
//! the DB schema including PK/FK key information" following Rajkumar et
//! al. and Chen et al. This module builds those prompts: an instruction
//! header, the serialized schema, retrieved NL/SQL exemplars, and the
//! question. GPT-style prompts are terse; LLaMA2 prompts are wrapped in
//! its chat template (`[INST] … [/INST]`), whose overhead is exactly why
//! fewer shots fit its 4,096-token window.

use crate::capability::SystemKind;
use crate::schema_encode::approx_tokens;
use footballdb::DataModel;
use nlq::GoldExample;
use std::fmt::Write;

/// Per-system instruction header.
pub fn instruction(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Gpt35 => {
            "You are a Text-to-SQL assistant. Given the database schema and \
             examples, translate the question into a single SQL query. \
             Answer with SQL only."
        }
        SystemKind::Llama2 => {
            "<<SYS>> You are a precise Text-to-SQL translator for a football \
             world-cup database. Study the schema and the solved examples \
             carefully. Produce exactly one valid SQL query for the final \
             question, with no commentary, no markdown, and no explanation \
             of any kind. <</SYS>>"
        }
        // Fine-tuned systems consume encoder inputs, not prompts.
        _ => "",
    }
}

/// Renders a single exemplar in the system's shot format.
pub fn render_shot(kind: SystemKind, question: &str, sql: &str) -> String {
    match kind {
        SystemKind::Llama2 => format!("[INST] Translate to SQL: {question} [/INST]\n{sql}\n"),
        _ => format!("-- Question: {question}\nSQL: {sql}\n"),
    }
}

/// Builds the complete prompt.
pub fn build_prompt(
    kind: SystemKind,
    schema_text: &str,
    shots: &[&GoldExample],
    model: DataModel,
    question: &str,
) -> String {
    let mut out = String::with_capacity(schema_text.len() + shots.len() * 128 + 256);
    let _ = writeln!(out, "{}", instruction(kind));
    let _ = writeln!(out, "-- Database schema:\n{schema_text}");
    if !shots.is_empty() {
        let _ = writeln!(out, "-- Examples:");
        for s in shots {
            out.push_str(&render_shot(kind, &s.question, s.sql(model)));
        }
    }
    match kind {
        SystemKind::Llama2 => {
            let _ = writeln!(out, "[INST] Translate to SQL: {question} [/INST]");
        }
        _ => {
            let _ = write!(out, "-- Question: {question}\nSQL:");
        }
    }
    out
}

/// Token size of the built prompt.
pub fn prompt_tokens(
    kind: SystemKind,
    schema_text: &str,
    shots: &[&GoldExample],
    model: DataModel,
    question: &str,
) -> usize {
    approx_tokens(&build_prompt(kind, schema_text, shots, model, question))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shot(i: usize) -> GoldExample {
        GoldExample {
            id: i,
            question: format!("Who won the world cup in {}?", 1930 + 4 * i),
            sql: [
                format!("SELECT w{i} FROM a"),
                format!("SELECT w{i} FROM b"),
                format!("SELECT w{i} FROM c"),
            ],
            topic: "winner",
        }
    }

    #[test]
    fn prompt_contains_all_sections() {
        let shots = [shot(0), shot(1)];
        let refs: Vec<&GoldExample> = shots.iter().collect();
        let p = build_prompt(
            SystemKind::Gpt35,
            "table t (a int)",
            &refs,
            DataModel::V1,
            "Who won in 2014?",
        );
        assert!(p.contains("Text-to-SQL assistant"));
        assert!(p.contains("table t (a int)"));
        assert!(p.contains("Who won the world cup in 1930?"));
        assert!(p.contains("SELECT w1 FROM a"));
        assert!(p.trim_end().ends_with("SQL:"));
    }

    #[test]
    fn prompt_uses_model_specific_sql() {
        let shots = [shot(0)];
        let refs: Vec<&GoldExample> = shots.iter().collect();
        let v1 = build_prompt(SystemKind::Gpt35, "", &refs, DataModel::V1, "q");
        let v3 = build_prompt(SystemKind::Gpt35, "", &refs, DataModel::V3, "q");
        assert!(v1.contains("FROM a"));
        assert!(v3.contains("FROM c"));
    }

    #[test]
    fn llama_prompt_is_more_verbose_per_shot() {
        let shots = [shot(0)];
        let refs: Vec<&GoldExample> = shots.iter().collect();
        let gpt_one = prompt_tokens(SystemKind::Gpt35, "", &refs, DataModel::V1, "q");
        let gpt_zero = prompt_tokens(SystemKind::Gpt35, "", &[], DataModel::V1, "q");
        let llama_one = prompt_tokens(SystemKind::Llama2, "", &refs, DataModel::V1, "q");
        let llama_zero = prompt_tokens(SystemKind::Llama2, "", &[], DataModel::V1, "q");
        assert!(
            llama_one - llama_zero > gpt_one - gpt_zero,
            "chat template must cost more per shot"
        );
    }

    #[test]
    fn llama_template_wraps_question() {
        let p = build_prompt(SystemKind::Llama2, "", &[], DataModel::V1, "Who won?");
        assert!(p.contains("<<SYS>>"));
        assert!(p.trim_end().ends_with("[/INST]"));
    }

    #[test]
    fn zero_shot_prompt_has_no_examples_header() {
        let p = build_prompt(SystemKind::Gpt35, "s", &[], DataModel::V1, "q");
        assert!(!p.contains("-- Examples:"));
    }
}
