//! The five Text-to-SQL systems.
//!
//! Each system composes the real pipeline pieces per Table 4:
//!
//! * **ValueNet** — schema linking + value finder + SemQL IR; the
//!   prediction is reconstructed from the IR through the shortest-join-
//!   path algorithm (post-processing), so multi-FK data-model shapes
//!   fail mechanically.
//! * **T5-Picard** — seq2seq decoding without key information, with
//!   Picard grammar/schema-constrained decoding.
//! * **T5-Picard_Keys** — same with PK/FK-augmented schema encoding.
//! * **GPT-3.5 / LLaMA2-70B** — few-shot prompting with embedding-based
//!   example retrieval; LLaMA2's 4,096-token context caps the shots.
//!
//! On an unsuccessful capability draw the system emits a *characteristic
//! wrong prediction* — a realistic corruption of the query (wrong value,
//! missing filter, flipped operator, wrong column, hallucinated
//! identifier) rather than a coin-flip blank, so error analyses see
//! realistic failure artifacts.

use crate::capability::{Budget, SystemKind};
use crate::cost;
use crate::decode::{constrain, DecodeOutcome};
use crate::fault::{corrupt_sql, FaultKind, FaultPlan, RetryPolicy, SimClock};
use crate::ir::SemQl;
use crate::joinpath::JoinGraph;
use crate::linking::{find_values, schema_links};
use crate::prompt::build_prompt;
use crate::retrieval::RetrievalIndex;
use crate::schema_encode::{approx_tokens, encode_schema, EncodeOptions};
use footballdb::DataModel;
use nlq::GoldExample;
use sqlengine::{Catalog, Database, Value};
use sqlkit::ast::{BinOp, Expr, Lit, Query, Select, SelectItem};
use xrng::Rng;

/// Shared evaluation context for one (data model, training budget).
pub struct SystemContext<'a> {
    pub model: DataModel,
    pub db: &'a Database,
    pub graph: &'a JoinGraph,
    /// Retrieval index over the training/few-shot pool.
    pub index: Option<&'a RetrievalIndex<'a>>,
    pub budget: Budget,
}

impl SystemContext<'_> {
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }
}

/// LLaMA2-70B's context limit (paper footnote 2).
pub const LLAMA_TOKEN_BUDGET: usize = 4096;
/// GPT-3.5's effective context for the paper's prompts.
pub const GPT_TOKEN_BUDGET: usize = 16384;

/// One prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The produced SQL, or `None` when the system generated nothing
    /// (the paper's ~11% no-SQL cases).
    pub sql: Option<String>,
    /// Simulated wall-clock seconds.
    pub latency: f64,
    /// Few-shot examples that actually fit the prompt (LLMs).
    pub shots_used: usize,
    /// Picard prefix checks performed (decode cost diagnostics).
    pub prefix_checks: usize,
    /// Size of the constructed prompt in tokens (LLM systems; 0 for
    /// fine-tuned systems, whose encoder input is accounted separately).
    pub prompt_tokens: usize,
}

/// Runs one system on one question.
///
/// `p_success` is the calibrated success probability from
/// [`crate::capability::success_probabilities`]; the draw is taken from
/// `rng`, which the harness forks per (system, item) for determinism.
pub fn predict(
    kind: SystemKind,
    item: &GoldExample,
    ctx: &SystemContext<'_>,
    p_success: f64,
    rng: &mut Rng,
) -> Prediction {
    // Pre-processing work every system performs (and whose size feeds
    // the latency model): schema encoding, plus linking for ValueNet.
    let enc_opts = match kind {
        SystemKind::ValueNet => EncodeOptions::FULL,
        SystemKind::T5Picard => EncodeOptions::SCHEMA_ONLY,
        _ => EncodeOptions::WITH_KEYS,
    };
    let schema_text = encode_schema(ctx.catalog(), Some(ctx.db), enc_opts);
    let schema_tokens = approx_tokens(&schema_text);
    if kind.uses_content() {
        // ValueNet's value finder and schema linking run on every query.
        let _links = schema_links(&item.question, ctx.db);
        let _values = find_values(&item.question, ctx.db);
    }

    // Few-shot retrieval under the context budget. The budget is scaled
    // by the prompt format's verbosity: LLaMA2's chat template and
    // instruction blocks inflate every token of payload, which is why
    // the paper could fit at most 8 shots into its 4,096-token window.
    let mut shots_used = 0;
    let mut prompt_tokens = 0;
    if let (Budget::FewShot(want), Some(index)) = (ctx.budget, ctx.index) {
        let (budget, verbosity) = match kind {
            SystemKind::Llama2 => (LLAMA_TOKEN_BUDGET, 2.5),
            _ => (GPT_TOKEN_BUDGET, 1.0),
        };
        let effective = (budget as f64 / verbosity) as usize;
        let (shots, _tokens) =
            index.shots_within_budget(&item.question, ctx.model, want, schema_tokens, effective);
        shots_used = shots.len();
        // Materialize the actual prompt the model would receive.
        let shot_refs: Vec<&GoldExample> = shots.iter().map(|&i| index.example(i)).collect();
        let prompt = build_prompt(kind, &schema_text, &shot_refs, ctx.model, &item.question);
        prompt_tokens = approx_tokens(&prompt);
    }

    let success = rng.chance(p_success);
    let gold = item.sql(ctx.model);

    let (sql, prefix_checks) = if success {
        produce_success(kind, gold, ctx)
    } else {
        produce_failure(kind, gold, ctx, rng)
    };

    // When no SQL is emitted the decoder still ran to the failure point;
    // charge roughly a full decode.
    let out_tokens = sql
        .as_deref()
        .map(sqlkit::token_count)
        .unwrap_or_else(|| sqlkit::token_count(gold));
    let latency = cost::latency(kind, out_tokens, rng);

    Prediction {
        sql,
        latency,
        shots_used,
        prefix_checks,
        prompt_tokens,
    }
}

/// A prediction that passed through a [`FaultPlan`]: the base prediction
/// (possibly corrupted), plus what the governor observed.
#[derive(Debug, Clone)]
pub struct GovernedPrediction {
    pub prediction: Prediction,
    /// The injected fault, if this (system, question) drew one.
    pub fault: Option<FaultKind>,
    /// Retry attempts consumed by a transient fault.
    pub retries: u32,
    /// Simulated seconds spent backing off (already added to latency).
    pub backoff_s: f64,
    /// True when a transient fault exhausted every retry: the provider
    /// never answered and the prediction carries no SQL.
    pub gave_up: bool,
}

/// [`predict`] wrapped in fault injection and retry governance.
///
/// With `plan = None` this is exactly `predict`. With a plan, the
/// question's seeded fault draw decides what happens at the provider
/// boundary: non-transient faults corrupt the emitted SQL ([`corrupt_sql`]);
/// a transient fault enters a retry loop whose exponential, seeded-jitter
/// backoff accrues on a simulated clock into the prediction's latency —
/// recovery leaves the SQL untouched, exhaustion drops it. A panic draw
/// (independent stream, see [`FaultPlan::draws_panic`]) panics *before*
/// any work, exercising the harness's per-query isolation.
pub fn predict_governed(
    kind: SystemKind,
    item: &GoldExample,
    ctx: &SystemContext<'_>,
    p_success: f64,
    rng: &mut Rng,
    plan: Option<&FaultPlan>,
    retry: &RetryPolicy,
) -> GovernedPrediction {
    if let Some(plan) = plan {
        if plan.draws_panic(kind, item.id) {
            panic!("injected worker fault: {kind} question {}", item.id);
        }
    }
    let mut prediction = predict(kind, item, ctx, p_success, rng);
    let fault = plan.and_then(|p| p.draw(kind, item.id));
    let Some(kind_drawn) = fault else {
        return GovernedPrediction {
            prediction,
            fault: None,
            retries: 0,
            backoff_s: 0.0,
            gave_up: false,
        };
    };
    let plan = plan.expect("fault implies plan");
    let mut inject = plan.injection_rng(kind, item.id);
    if kind_drawn != FaultKind::Transient {
        prediction.sql = corrupt_sql(kind_drawn, prediction.sql.take(), &mut inject);
        return GovernedPrediction {
            prediction,
            fault,
            retries: 0,
            backoff_s: 0.0,
            gave_up: false,
        };
    }
    // Transient provider error: deterministic retry with exponential
    // backoff. Each attempt recovers iff its uniform draw is >= the
    // fault rate, so recovery is monotone across rates with the same
    // seed (recovered at a high rate => recovered at any lower one).
    let mut clock = SimClock::new();
    let mut retries = 0;
    let mut recovered = false;
    for attempt in 0..retry.max_retries {
        clock.advance(retry.delay_s(attempt, &mut inject));
        retries += 1;
        if inject.f64() >= plan.rate {
            recovered = true;
            break;
        }
    }
    prediction.latency += clock.now_s();
    if !recovered {
        prediction.sql = None;
    }
    GovernedPrediction {
        prediction,
        fault,
        retries,
        backoff_s: clock.now_s(),
        gave_up: !recovered,
    }
}

/// Successful prediction: the pipeline reproduces the gold query through
/// its own machinery.
fn produce_success(
    kind: SystemKind,
    gold: &str,
    ctx: &SystemContext<'_>,
) -> (Option<String>, usize) {
    match kind {
        SystemKind::ValueNet => {
            // Gold → IR → SQL through the join-path algorithm. The
            // capability layer only grants success on non-vetoed items,
            // so this normally succeeds; any residual failure is an
            // honest pipeline failure.
            let Ok(q) = sqlkit::parse_query(gold) else {
                return (None, 0);
            };
            match SemQl::from_query(&q) {
                Ok(ir) => match ir.to_sql(ctx.graph) {
                    Ok(sql) => (Some(sql), 0),
                    Err(_) => (None, 0),
                },
                Err(_) => (None, 0),
            }
        }
        SystemKind::T5Picard | SystemKind::T5PicardKeys => {
            let outcome = constrain(gold, ctx.catalog());
            match outcome {
                DecodeOutcome::Accepted { prefix_checks } => {
                    (Some(gold.to_string()), prefix_checks)
                }
                DecodeOutcome::Rejected { prefix_checks, .. } => (None, prefix_checks),
            }
        }
        SystemKind::Gpt35 | SystemKind::Llama2 => (Some(gold.to_string()), 0),
    }
}

/// Failed prediction: a characteristic corruption of the query.
fn produce_failure(
    kind: SystemKind,
    gold: &str,
    ctx: &SystemContext<'_>,
    rng: &mut Rng,
) -> (Option<String>, usize) {
    // Some failures produce nothing at all.
    let p_none = match kind {
        SystemKind::ValueNet => 0.25,
        SystemKind::T5Picard | SystemKind::T5PicardKeys => 0.10,
        _ => 0.05,
    };
    if rng.chance(p_none) {
        return (None, 0);
    }
    let Ok(query) = sqlkit::parse_query(gold) else {
        return (None, 0);
    };
    // A failed prediction must actually *be* a failure: corruptions that
    // happen to produce the gold results are retried (the capability
    // model already decided this draw is wrong).
    let gold_result = sqlengine::execute_sql(ctx.db, gold).ok();
    let is_really_wrong = |sql: &str| -> bool {
        match (&gold_result, sqlengine::execute_sql(ctx.db, sql)) {
            (Some(gold_rs), Ok(rs)) => !rs.matches(gold_rs),
            // Unexecutable output is wrong by definition.
            _ => true,
        }
    };

    let mut checks = 0;
    for _attempt in 0..8 {
        let mut q = query.clone();
        let mutated = apply_mutation(&mut q, ctx, rng);
        if !mutated {
            break;
        }
        let sql = sqlkit::to_sql(&q);
        match kind {
            SystemKind::T5Picard | SystemKind::T5PicardKeys => {
                // Picard rejects schema-invalid corruptions; the decoder
                // backtracks and tries another beam.
                let outcome = constrain(&sql, ctx.catalog());
                checks += outcome.prefix_checks();
                if outcome.accepted() && is_really_wrong(&sql) {
                    return (Some(sql), checks);
                }
            }
            SystemKind::ValueNet => {
                // The IR layer keeps output schema-valid by construction;
                // emit only when an IR form exists.
                if let Ok(ir) = SemQl::from_query(&q) {
                    if let Ok(out) = ir.to_sql(ctx.graph) {
                        if is_really_wrong(&out) {
                            return (Some(out), checks);
                        }
                    }
                }
            }
            _ => {
                if is_really_wrong(&sql) {
                    return (Some(sql), checks);
                }
            }
        }
    }
    (None, checks)
}

/// Applies one random corruption in place. Returns false when the query
/// offers no mutation point.
fn apply_mutation(query: &mut Query, ctx: &SystemContext<'_>, rng: &mut Rng) -> bool {
    for _ in 0..6 {
        let choice = rng.index(6);
        let done = match choice {
            0 => mutate_literal(query, ctx, rng),
            1 => drop_where(query),
            2 => flip_operator(query),
            3 => swap_projection_column(query, ctx, rng),
            4 => tweak_limit(query, rng),
            _ => hallucinate_column(query, rng),
        };
        if done {
            return true;
        }
    }
    false
}

fn first_select_mut(query: &mut Query) -> Option<&mut Select> {
    match &mut query.body {
        sqlkit::ast::QueryBody::Select(s) => Some(s),
        sqlkit::ast::QueryBody::SetOp { left, .. } => {
            let mut node = left;
            loop {
                match node.as_mut() {
                    sqlkit::ast::QueryBody::Select(s) => return Some(s),
                    sqlkit::ast::QueryBody::SetOp { left, .. } => node = left,
                }
            }
        }
    }
}

/// Mutates the n-th literal in the WHERE clause.
fn mutate_literal(query: &mut Query, ctx: &SystemContext<'_>, rng: &mut Rng) -> bool {
    let teams: Vec<String> = ctx
        .db
        .rows("national_team")
        .map(|rows| {
            rows.iter()
                .filter_map(|r| match &r[1] {
                    Value::Text(s) => Some(s.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    let Some(select) = first_select_mut(query) else {
        return false;
    };
    let Some(w) = &mut select.where_clause else {
        return false;
    };
    let mut count = 0usize;
    count_literals(w, &mut count);
    if count == 0 {
        return false;
    }
    let target = rng.index(count);
    let mut seen = 0usize;
    mutate_nth_literal(w, target, &mut seen, &teams, rng)
}

fn count_literals(e: &Expr, count: &mut usize) {
    e.visit(&mut |x| {
        if matches!(x, Expr::Literal(_)) {
            *count += 1;
        }
    });
}

fn mutate_nth_literal(
    e: &mut Expr,
    target: usize,
    seen: &mut usize,
    teams: &[String],
    rng: &mut Rng,
) -> bool {
    match e {
        Expr::Literal(l) => {
            let hit = *seen == target;
            *seen += 1;
            if hit {
                *l = mutated_lit(l, teams, rng);
                return true;
            }
            false
        }
        Expr::Unary { expr, .. } => mutate_nth_literal(expr, target, seen, teams, rng),
        Expr::Binary { left, right, .. } => {
            mutate_nth_literal(left, target, seen, teams, rng)
                || mutate_nth_literal(right, target, seen, teams, rng)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            mutate_nth_literal(expr, target, seen, teams, rng)
                || mutate_nth_literal(low, target, seen, teams, rng)
                || mutate_nth_literal(high, target, seen, teams, rng)
        }
        Expr::InList { expr, list, .. } => {
            if mutate_nth_literal(expr, target, seen, teams, rng) {
                return true;
            }
            for item in list {
                if mutate_nth_literal(item, target, seen, teams, rng) {
                    return true;
                }
            }
            false
        }
        Expr::IsNull { expr, .. } => mutate_nth_literal(expr, target, seen, teams, rng),
        Expr::Agg { arg: Some(a), .. } => mutate_nth_literal(a, target, seen, teams, rng),
        Expr::Func { args, .. } => {
            for a in args {
                if mutate_nth_literal(a, target, seen, teams, rng) {
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

fn mutated_lit(l: &Lit, teams: &[String], rng: &mut Rng) -> Lit {
    match l {
        Lit::Int(v) => {
            let mut delta = rng.range_i64(1, 6);
            if rng.chance(0.5) {
                delta = -delta;
            }
            Lit::Int(v + delta)
        }
        Lit::Float(v) => Lit::Float(v + 1.0),
        Lit::Str(s) if s == "True" => Lit::Str("False".into()),
        Lit::Str(s) if s == "False" => Lit::Str("True".into()),
        Lit::Str(s) => {
            // Substitute a different entity when the value looks like a
            // team name; otherwise garble the string.
            if teams.iter().any(|t| t == s) && teams.len() > 1 {
                loop {
                    let cand = &teams[rng.index(teams.len())];
                    if cand != s {
                        return Lit::Str(cand.clone());
                    }
                }
            }
            Lit::Str(format!("{s}x"))
        }
        Lit::Bool(b) => Lit::Bool(!b),
        Lit::Null => Lit::Int(0),
    }
}

fn drop_where(query: &mut Query) -> bool {
    let Some(select) = first_select_mut(query) else {
        return false;
    };
    if select.where_clause.is_some() {
        select.where_clause = None;
        true
    } else {
        false
    }
}

fn flip_operator(query: &mut Query) -> bool {
    let Some(select) = first_select_mut(query) else {
        return false;
    };
    let Some(w) = &mut select.where_clause else {
        return false;
    };
    flip_first_cmp(w)
}

fn flip_first_cmp(e: &mut Expr) -> bool {
    match e {
        Expr::Binary { op, left, right } => {
            if op.is_comparison() && !matches!(op, BinOp::Like | BinOp::NotLike) {
                let cur = *op;
                *op = match cur {
                    BinOp::Eq => BinOp::Neq,
                    BinOp::Neq => BinOp::Eq,
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Lte => BinOp::Gte,
                    BinOp::Gte => BinOp::Lte,
                    other => other,
                };
                true
            } else {
                flip_first_cmp(left) || flip_first_cmp(right)
            }
        }
        Expr::Unary { expr, .. } => flip_first_cmp(expr),
        _ => false,
    }
}

fn swap_projection_column(query: &mut Query, ctx: &SystemContext<'_>, rng: &mut Rng) -> bool {
    let catalog = ctx.catalog();
    let Some(select) = first_select_mut(query) else {
        return false;
    };
    // Alias → base table map.
    let bindings: Vec<(String, String)> = select
        .table_refs()
        .filter_map(|t| {
            t.base_table()
                .map(|b| (t.binding().to_string(), b.to_string()))
        })
        .collect();
    for item in &mut select.projections {
        if let SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } = item
        {
            let base = match &c.table {
                Some(a) => bindings
                    .iter()
                    .find(|(bind, _)| bind.eq_ignore_ascii_case(a))
                    .map(|(_, b)| b.clone()),
                None => bindings.first().map(|(_, b)| b.clone()),
            };
            let Some(base) = base else { continue };
            let Some(schema) = catalog.table(&base) else {
                continue;
            };
            let others: Vec<&str> = schema
                .column_names()
                .filter(|n| !n.eq_ignore_ascii_case(&c.column))
                .collect();
            if others.is_empty() {
                continue;
            }
            c.column = others[rng.index(others.len())].to_string();
            return true;
        }
    }
    false
}

fn tweak_limit(query: &mut Query, rng: &mut Rng) -> bool {
    match query.limit {
        Some(n) => {
            query.limit = Some(n + 1 + rng.below(3));
            true
        }
        None => false,
    }
}

fn hallucinate_column(query: &mut Query, _rng: &mut Rng) -> bool {
    let Some(select) = first_select_mut(query) else {
        return false;
    };
    for item in &mut select.projections {
        if let SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } = item
        {
            // A plausible-but-wrong identifier, the classic LLM slip.
            c.column = format!("{}_name", c.column.trim_end_matches("name"));
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{profile_items, success_probabilities};
    use footballdb::{generate, load};
    use nlq::gold::{build_benchmark, PipelineConfig};
    use sqlengine::execute_sql;

    struct Fixture {
        db: Database,
        graph: JoinGraph,
        bench: nlq::Benchmark,
    }

    fn fixture(model: DataModel) -> Fixture {
        let d = generate(7);
        let db = load(&d, model);
        let graph = JoinGraph::from_catalog(&model.catalog());
        let cfg = PipelineConfig {
            raw_questions: 500,
            pool_size: 200,
            selected_size: 80,
            test_size: 20,
            clusters: 12,
            ..PipelineConfig::default()
        };
        let bench = build_benchmark(&d, 5, &cfg);
        Fixture { db, graph, bench }
    }

    fn ctx<'a>(f: &'a Fixture, model: DataModel, budget: Budget) -> SystemContext<'a> {
        SystemContext {
            model,
            db: &f.db,
            graph: &f.graph,
            index: None,
            budget,
        }
    }

    #[test]
    fn success_draw_reproduces_gold_results_for_llm() {
        let model = DataModel::V3;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FewShot(0));
        let mut rng = Rng::new(1);
        let item = &f.bench.test[0];
        let p = predict(SystemKind::Gpt35, item, &c, 1.0, &mut rng);
        assert_eq!(p.sql.as_deref(), Some(item.sql(model)));
    }

    #[test]
    fn failure_draw_changes_results() {
        let model = DataModel::V3;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FewShot(0));
        let mut wrong = 0;
        let mut total = 0;
        for (i, item) in f.bench.test.iter().enumerate() {
            let mut rng = Rng::new(100 + i as u64);
            let p = predict(SystemKind::Gpt35, item, &c, 0.0, &mut rng);
            total += 1;
            let gold_rs = execute_sql(&f.db, item.sql(model)).unwrap();
            let matches = match p.sql.as_deref() {
                None => false,
                Some(sql) => execute_sql(&f.db, sql)
                    .map(|rs| rs.matches(&gold_rs))
                    .unwrap_or(false),
            };
            if !matches {
                wrong += 1;
            }
        }
        // Corruptions occasionally coincide with gold results, but the
        // vast majority must be wrong.
        assert!(
            wrong * 10 >= total * 8,
            "only {wrong}/{total} corrupted predictions were wrong"
        );
    }

    #[test]
    fn valuenet_success_path_goes_through_ir() {
        let model = DataModel::V3;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FineTuned(300));
        // Find a non-vetoed item.
        let profiles = profile_items(&f.bench.test, model, &f.graph);
        let (i, _) = profiles
            .iter()
            .enumerate()
            .find(|(_, p)| !p.semql_veto)
            .expect("some v3 item is SemQL-compatible");
        let item = &f.bench.test[i];
        let mut rng = Rng::new(3);
        let p = predict(SystemKind::ValueNet, item, &c, 1.0, &mut rng);
        let sql = p.sql.expect("ValueNet emits SQL on success");
        // The reconstruction is alias-normalized, not byte-identical.
        let gold_rs = execute_sql(&f.db, item.sql(model)).unwrap();
        let pred_rs = execute_sql(&f.db, &sql).unwrap_or_else(|e| panic!("{e}\n{sql}"));
        assert!(
            pred_rs.matches(&gold_rs),
            "gold {} vs {}",
            item.sql(model),
            sql
        );
    }

    #[test]
    fn picard_systems_emit_schema_valid_sql_only() {
        let model = DataModel::V1;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FineTuned(300));
        for (i, item) in f.bench.test.iter().enumerate() {
            let mut rng = Rng::new(i as u64);
            let p = predict(SystemKind::T5PicardKeys, item, &c, 0.3, &mut rng);
            if let Some(sql) = &p.sql {
                assert!(
                    constrain(sql, c.catalog()).accepted(),
                    "Picard emitted invalid SQL: {sql}"
                );
            }
        }
    }

    #[test]
    fn llama_budget_limits_shots() {
        let model = DataModel::V2;
        let f = fixture(model);
        let index = RetrievalIndex::build(&f.bench.train);
        let c = SystemContext {
            model,
            db: &f.db,
            graph: &f.graph,
            index: Some(&index),
            budget: Budget::FewShot(30),
        };
        let mut rng = Rng::new(5);
        let item = &f.bench.test[0];
        let llama = predict(SystemKind::Llama2, item, &c, 0.5, &mut rng);
        let gpt = predict(SystemKind::Gpt35, item, &c, 0.5, &mut rng);
        assert!(
            llama.shots_used < gpt.shots_used,
            "LLaMA {} vs GPT {}",
            llama.shots_used,
            gpt.shots_used
        );
        assert!(gpt.shots_used >= 20);
    }

    #[test]
    fn llama_prompts_respect_token_window() {
        let model = DataModel::V2;
        let f = fixture(model);
        let index = RetrievalIndex::build(&f.bench.train);
        let c = SystemContext {
            model,
            db: &f.db,
            graph: &f.graph,
            index: Some(&index),
            budget: Budget::FewShot(30),
        };
        let mut rng = Rng::new(7);
        for item in f.bench.test.iter().take(5) {
            let p = predict(SystemKind::Llama2, item, &c, 0.5, &mut rng);
            assert!(
                p.prompt_tokens <= LLAMA_TOKEN_BUDGET,
                "prompt of {} tokens exceeds the 4096 window",
                p.prompt_tokens
            );
            assert!(p.prompt_tokens > 0);
        }
    }

    #[test]
    fn latency_ordering_matches_table7() {
        let model = DataModel::V1;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FineTuned(300));
        let item = &f.bench.test[0];
        let mut lat = std::collections::HashMap::new();
        for kind in SystemKind::ALL {
            let mut xs = Vec::new();
            for s in 0..30u64 {
                let mut rng = Rng::new(s);
                xs.push(predict(kind, item, &c, 0.9, &mut rng).latency);
            }
            lat.insert(kind, xs.iter().sum::<f64>() / xs.len() as f64);
        }
        assert!(lat[&SystemKind::ValueNet] < lat[&SystemKind::Gpt35]);
        assert!(lat[&SystemKind::Gpt35] < lat[&SystemKind::Llama2]);
        assert!(lat[&SystemKind::Llama2] < lat[&SystemKind::T5PicardKeys]);
        assert!(lat[&SystemKind::T5PicardKeys] < lat[&SystemKind::T5Picard]);
    }

    #[test]
    fn capability_probabilities_feed_realistic_accuracy() {
        // End-to-end smoke: the measured accuracy under the plan should
        // be near the target for a mid-size configuration.
        let model = DataModel::V3;
        let f = fixture(model);
        let c = ctx(&f, model, Budget::FineTuned(300));
        let profiles = profile_items(&f.bench.test, model, &f.graph);
        let probs = success_probabilities(
            SystemKind::T5PicardKeys,
            model,
            Budget::FineTuned(300),
            &profiles,
        );
        let mut correct = 0;
        let runs = 10;
        for run in 0..runs {
            for (i, item) in f.bench.test.iter().enumerate() {
                let mut rng = Rng::new((run * 1000 + i) as u64);
                let p = predict(SystemKind::T5PicardKeys, item, &c, probs[i], &mut rng);
                let gold_rs = execute_sql(&f.db, item.sql(model)).unwrap();
                if let Some(sql) = p.sql.as_deref() {
                    if let Ok(rs) = execute_sql(&f.db, sql) {
                        if rs.matches(&gold_rs) {
                            correct += 1;
                        }
                    }
                }
            }
        }
        let acc = correct as f64 / (runs * f.bench.test.len()) as f64;
        assert!(
            (0.28..0.58).contains(&acc),
            "accuracy {acc} far from the 0.41 target"
        );
    }
}
