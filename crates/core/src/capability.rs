//! System capability model.
//!
//! The five evaluated systems are real pipelines (schema linking, IR,
//! join-path reconstruction, constrained decoding, few-shot retrieval)
//! layered with a *calibrated stochastic capability model* standing in
//! for the neural network weights we cannot run. The model has three
//! parts:
//!
//! 1. **Targets** — per (system, data model, training budget) mean
//!    execution accuracies taken from the paper's Tables 5 and 6, with
//!    linear interpolation between measured budgets.
//! 2. **Difficulty multipliers** — per-item factors from Spider hardness
//!    and query characteristics (set operations, subqueries, join
//!    count), normalized over the evaluation set so the mean stays at
//!    the target. These produce Figure 7/8's falloff shapes.
//! 3. **Mechanistic vetoes** — items a pipeline *cannot* answer
//!    regardless of the draw: for ValueNet, gold queries with no SemQL
//!    form or whose join path hits a multi-FK edge (the paper keeps such
//!    samples in v1/v2 "for fairness").

use crate::ir::SemQl;
use crate::joinpath::JoinGraph;
use footballdb::DataModel;
use nlq::GoldExample;
use sqlkit::{analyze_sql, classify_sql, Hardness, QueryStats};

/// The five evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemKind {
    ValueNet,
    T5Picard,
    T5PicardKeys,
    Gpt35,
    Llama2,
}

impl SystemKind {
    pub const ALL: [SystemKind; 5] = [
        SystemKind::ValueNet,
        SystemKind::T5Picard,
        SystemKind::T5PicardKeys,
        SystemKind::Gpt35,
        SystemKind::Llama2,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SystemKind::ValueNet => "ValueNet",
            SystemKind::T5Picard => "T5-Picard",
            SystemKind::T5PicardKeys => "T5-Picard_Keys",
            SystemKind::Gpt35 => "GPT-3.5",
            SystemKind::Llama2 => "LLaMA2-70B",
        }
    }

    /// Parameter count in millions (Table 4's scale row).
    pub fn params_millions(self) -> u64 {
        match self {
            SystemKind::ValueNet => 148,
            SystemKind::T5Picard | SystemKind::T5PicardKeys => 3_000,
            SystemKind::Gpt35 => 175_000,
            SystemKind::Llama2 => 70_000,
        }
    }

    /// Whether the schema encoding includes PK/FK constraints (Table 4).
    pub fn uses_keys(self) -> bool {
        !matches!(self, SystemKind::T5Picard)
    }

    /// Whether DB content feeds the input (ValueNet only).
    pub fn uses_content(self) -> bool {
        matches!(self, SystemKind::ValueNet)
    }

    /// Whether the system is fine-tuned (vs. prompted).
    pub fn fine_tuned(self) -> bool {
        !matches!(self, SystemKind::Gpt35 | SystemKind::Llama2)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Training budget: labeled fine-tuning examples or few-shot prompts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    FineTuned(usize),
    FewShot(usize),
}

impl Budget {
    pub fn size(self) -> usize {
        match self {
            Budget::FineTuned(n) | Budget::FewShot(n) => n,
        }
    }
}

/// Accuracy grid points per (system, data model): (budget, accuracy).
/// Values are the paper's Tables 5 and 6.
fn grid(kind: SystemKind, model: DataModel) -> &'static [(usize, f64)] {
    use DataModel::*;
    use SystemKind::*;
    match (kind, model) {
        (ValueNet, V1) => &[
            (0, 0.02),
            (100, 0.16),
            (200, 0.18),
            (300, 0.20),
            (895, 0.24),
        ],
        (ValueNet, V2) => &[
            (0, 0.03),
            (100, 0.14),
            (200, 0.18),
            (300, 0.20),
            (895, 0.24),
        ],
        (ValueNet, V3) => &[
            (0, 0.03),
            (100, 0.21),
            (200, 0.23),
            (300, 0.25),
            (895, 0.29),
        ],
        (T5Picard, V1) => &[(0, 0.08), (100, 0.22), (200, 0.29), (300, 0.29)],
        (T5Picard, V2) => &[(0, 0.07), (100, 0.16), (200, 0.29), (300, 0.32)],
        (T5Picard, V3) => &[(0, 0.06), (100, 0.06), (200, 0.27), (300, 0.29)],
        (T5PicardKeys, V1) => &[(0, 0.07), (100, 0.27), (200, 0.33), (300, 0.38)],
        (T5PicardKeys, V2) => &[(0, 0.07), (100, 0.29), (200, 0.33), (300, 0.38)],
        (T5PicardKeys, V3) => &[(0, 0.08), (100, 0.25), (200, 0.36), (300, 0.41)],
        (Gpt35, V1) => &[(0, 0.25), (10, 0.41), (20, 0.39), (30, 0.37)],
        (Gpt35, V2) => &[(0, 0.25), (10, 0.37), (20, 0.36), (30, 0.375)],
        (Gpt35, V3) => &[(0, 0.21), (10, 0.385), (20, 0.37), (30, 0.37)],
        (Llama2, V1) => &[(0, 0.05), (2, 0.1125), (4, 0.105), (8, 0.16)],
        (Llama2, V2) => &[(0, 0.04), (2, 0.0875), (4, 0.085), (8, 0.145)],
        (Llama2, V3) => &[(0, 0.05), (2, 0.085), (4, 0.085), (8, 0.15)],
    }
}

/// Target mean execution accuracy for a configuration (linear
/// interpolation between grid points; clamped beyond the grid).
pub fn target_accuracy(kind: SystemKind, model: DataModel, budget: Budget) -> f64 {
    let g = grid(kind, model);
    let n = budget.size();
    if n <= g[0].0 {
        return g[0].1;
    }
    for w in g.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if n <= x1 {
            let f = (n - x0) as f64 / (x1 - x0) as f64;
            return y0 + f * (y1 - y0);
        }
    }
    g.last().unwrap().1
}

/// Hardness multiplier (produces Figure 7's falloff; calibrated so the
/// best systems land at ≈77% on easy and ≈20% on extra-hard).
pub fn hardness_multiplier(h: Hardness) -> f64 {
    match h {
        Hardness::Easy => 2.10,
        Hardness::Medium => 1.25,
        Hardness::Hard => 0.85,
        Hardness::Extra => 0.52,
    }
}

/// Characteristic multiplier (Figure 8's effects: set operations are the
/// weakest spot across systems; subqueries and deep joins also hurt).
pub fn characteristic_multiplier(stats: &QueryStats) -> f64 {
    let mut m = 1.0;
    if stats.set_ops > 0 {
        m *= 0.45;
    }
    if stats.subqueries > 0 {
        m *= 0.70;
    }
    if stats.joins >= 3 {
        m *= 0.85;
    }
    m
}

/// Per-item difficulty profile of a gold example under a data model.
#[derive(Debug, Clone)]
pub struct ItemProfile {
    pub stats: QueryStats,
    pub hardness: Hardness,
    /// ValueNet-style pipeline veto: no SemQL form, join-path failure,
    /// or (when database content is supplied) a reconstruction that
    /// executes to different results than the gold query — all shapes
    /// the IR pipeline cannot answer no matter how well it is trained.
    pub semql_veto: bool,
    /// The lexical problem (Section 5.2): the question phrases a concept
    /// ("second place", "lost in the final") that this data model stores
    /// only as a *cell value* (`prize = 'runner-up'`), so value linking
    /// has to bridge vocabulary. False when the concept is a named
    /// schema column (v1's `runner_up` FK, v3's Boolean `runner_up`).
    pub lexical_gap: bool,
}

/// Phrases users prefer for the runner-up concept (≈3× more common than
/// "runner-up" in the deployment logs).
const GAP_PHRASES: [&str; 3] = ["second place", "lost in the final", "came second"];

fn has_lexical_gap(question: &str, gold_sql: &str) -> bool {
    let q = question.to_lowercase();
    GAP_PHRASES.iter().any(|p| q.contains(p)) && gold_sql.contains("prize")
}

/// Profiles every item of an evaluation set for one data model.
///
/// With `db` supplied, the SemQL veto additionally checks that the IR
/// round-trip *executes equivalently* to the gold query (the paper's
/// "samples that cannot be answered by ValueNet", Section 6.2).
pub fn profile_items_with_db(
    items: &[GoldExample],
    model: DataModel,
    graph: &JoinGraph,
    db: Option<&sqlengine::Database>,
) -> Vec<ItemProfile> {
    items
        .iter()
        .map(|e| {
            let sql = e.sql(model);
            let stats = analyze_sql(sql);
            let hardness = classify_sql(sql);
            let reconstruction = sqlkit::parse_query(sql)
                .ok()
                .and_then(|q| SemQl::from_query(&q).ok())
                .and_then(|ir| ir.to_sql(graph).ok());
            let semql_veto = match (reconstruction, db) {
                (None, _) => true,
                (Some(rec), Some(db)) => {
                    let gold_rs = sqlengine::execute_sql(db, sql).ok();
                    let rec_rs = sqlengine::execute_sql(db, &rec).ok();
                    match (gold_rs, rec_rs) {
                        (Some(g), Some(r)) => !r.matches(&g),
                        _ => true,
                    }
                }
                (Some(_), None) => false,
            };
            ItemProfile {
                stats,
                hardness,
                semql_veto,
                lexical_gap: has_lexical_gap(&e.question, sql),
            }
        })
        .collect()
}

/// Profiles without execution checks (structural vetoes only).
pub fn profile_items(
    items: &[GoldExample],
    model: DataModel,
    graph: &JoinGraph,
) -> Vec<ItemProfile> {
    profile_items_with_db(items, model, graph, None)
}

/// Computes per-item success probabilities whose mean over the set
/// equals the target (before clamping effects), respecting vetoes for
/// IR-based systems.
pub fn success_probabilities(
    kind: SystemKind,
    model: DataModel,
    budget: Budget,
    profiles: &[ItemProfile],
) -> Vec<f64> {
    let target = target_accuracy(kind, model, budget);
    let vetoed = |p: &ItemProfile| kind == SystemKind::ValueNet && p.semql_veto;
    let mults: Vec<f64> = profiles
        .iter()
        .map(|p| {
            if vetoed(p) {
                0.0
            } else {
                let lex = if p.lexical_gap { 0.55 } else { 1.0 };
                hardness_multiplier(p.hardness) * characteristic_multiplier(&p.stats) * lex
            }
        })
        .collect();
    let mean_mult: f64 = mults.iter().sum::<f64>() / mults.len().max(1) as f64;
    if mean_mult <= 0.0 {
        return vec![0.0; profiles.len()];
    }
    mults
        .iter()
        .map(|m| (target * m / mean_mult).clamp(0.0, 0.97))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_match_paper_table5_anchor_points() {
        assert_eq!(
            target_accuracy(SystemKind::ValueNet, DataModel::V3, Budget::FineTuned(300)),
            0.25
        );
        assert_eq!(
            target_accuracy(
                SystemKind::T5PicardKeys,
                DataModel::V3,
                Budget::FineTuned(300)
            ),
            0.41
        );
        assert_eq!(
            target_accuracy(SystemKind::T5Picard, DataModel::V1, Budget::FineTuned(0)),
            0.08
        );
    }

    #[test]
    fn targets_match_paper_table6_anchor_points() {
        assert_eq!(
            target_accuracy(SystemKind::Gpt35, DataModel::V1, Budget::FewShot(10)),
            0.41
        );
        assert_eq!(
            target_accuracy(SystemKind::Llama2, DataModel::V1, Budget::FewShot(8)),
            0.16
        );
    }

    #[test]
    fn interpolation_is_monotone_between_points() {
        let a = target_accuracy(SystemKind::ValueNet, DataModel::V3, Budget::FineTuned(150));
        assert!(a > 0.21 && a < 0.23);
        // Beyond the grid: saturates at the last point.
        let b = target_accuracy(SystemKind::ValueNet, DataModel::V3, Budget::FineTuned(2000));
        assert_eq!(b, 0.29);
    }

    #[test]
    fn keys_dimension_matches_table4() {
        assert!(!SystemKind::T5Picard.uses_keys());
        assert!(SystemKind::T5PicardKeys.uses_keys());
        assert!(SystemKind::ValueNet.uses_content());
        assert!(!SystemKind::Gpt35.uses_content());
    }

    #[test]
    fn hardness_multipliers_fall_with_difficulty() {
        assert!(hardness_multiplier(Hardness::Easy) > hardness_multiplier(Hardness::Medium));
        assert!(hardness_multiplier(Hardness::Hard) > hardness_multiplier(Hardness::Extra));
    }

    #[test]
    fn set_operations_are_penalized_most() {
        let mut s = QueryStats::default();
        let base = characteristic_multiplier(&s);
        s.set_ops = 1;
        let with_set = characteristic_multiplier(&s);
        assert!(with_set < base * 0.5);
    }

    #[test]
    fn probabilities_average_to_target() {
        use footballdb::generate;
        use nlq::gold::{build_benchmark, PipelineConfig};
        let d = generate(7);
        let cfg = PipelineConfig {
            raw_questions: 600,
            pool_size: 250,
            selected_size: 100,
            test_size: 100,
            clusters: 12,
            ..PipelineConfig::default()
        };
        let bench = build_benchmark(&d, 3, &cfg);
        let model = DataModel::V3;
        let graph = JoinGraph::from_catalog(&model.catalog());
        let profiles = profile_items(&bench.test, model, &graph);
        let probs = success_probabilities(
            SystemKind::T5PicardKeys,
            model,
            Budget::FineTuned(300),
            &profiles,
        );
        let mean: f64 = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!(
            (mean - 0.41).abs() < 0.03,
            "mean prob = {mean}, expected ≈ 0.41"
        );
    }

    #[test]
    fn valuenet_vetoes_zero_out_items() {
        let profile = ItemProfile {
            stats: QueryStats::default(),
            hardness: Hardness::Easy,
            semql_veto: true,
            lexical_gap: false,
        };
        let ok = ItemProfile {
            stats: QueryStats::default(),
            hardness: Hardness::Easy,
            semql_veto: false,
            lexical_gap: false,
        };
        let probs = success_probabilities(
            SystemKind::ValueNet,
            DataModel::V1,
            Budget::FineTuned(300),
            &[profile.clone(), ok.clone()],
        );
        assert_eq!(probs[0], 0.0);
        assert!(probs[1] > 0.0);
        // Non-IR systems ignore the veto.
        let probs = success_probabilities(
            SystemKind::Gpt35,
            DataModel::V1,
            Budget::FewShot(10),
            &[profile, ok],
        );
        assert!(probs[0] > 0.0);
    }

    #[test]
    fn empty_profile_set_is_safe() {
        let probs =
            success_probabilities(SystemKind::Gpt35, DataModel::V1, Budget::FewShot(10), &[]);
        assert!(probs.is_empty());
    }
}
