//! Integration: the multi-schema property.
//!
//! FootballDB's unique feature (Table 8) is that the *same* questions
//! carry gold SQL for three different data models over the same data.
//! That only means anything if the three gold labels actually agree: for
//! every selected example, executing the v1, v2, and v3 SQL on the
//! corresponding database instances must produce identical results.

use footballdb::{generate, load_all, DataModel};
use nlq::gold::{build_benchmark, PipelineConfig};
use sqlengine::execute_sql;
use std::sync::OnceLock;

struct Fixture {
    dbs: [(DataModel, sqlengine::Database); 3],
    bench: nlq::Benchmark,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let domain = generate(footballdb::DEFAULT_SEED);
        let dbs = load_all(&domain);
        let cfg = PipelineConfig {
            raw_questions: 1500,
            pool_size: 500,
            selected_size: 200,
            test_size: 50,
            clusters: 20,
            ..PipelineConfig::default()
        };
        let bench = build_benchmark(&domain, 13, &cfg);
        Fixture { dbs, bench }
    })
}

fn db(f: &Fixture, m: DataModel) -> &sqlengine::Database {
    &f.dbs.iter().find(|(x, _)| *x == m).unwrap().1
}

#[test]
fn every_gold_example_executes_on_every_model() {
    let f = fixture();
    for e in &f.bench.selected {
        for m in DataModel::ALL {
            let sql = e.sql(m);
            execute_sql(db(f, m), sql)
                .unwrap_or_else(|err| panic!("{m} gold failed: {err}\nQ: {}\n{sql}", e.question));
        }
    }
}

#[test]
fn gold_results_agree_across_all_three_models() {
    let f = fixture();
    for e in &f.bench.selected {
        let r1 = execute_sql(db(f, DataModel::V1), e.sql(DataModel::V1)).unwrap();
        let r2 = execute_sql(db(f, DataModel::V2), e.sql(DataModel::V2)).unwrap();
        let r3 = execute_sql(db(f, DataModel::V3), e.sql(DataModel::V3)).unwrap();
        assert!(
            r1.matches(&r2),
            "v1 vs v2 disagree on {:?}:\n{}\nvs\n{}",
            e.question,
            r1,
            r2
        );
        assert!(
            r1.matches(&r3),
            "v1 vs v3 disagree on {:?}:\n{}\nvs\n{}",
            e.question,
            r1,
            r3
        );
    }
}

#[test]
fn v3_gold_needs_no_set_operations_v1_v2_sometimes_do() {
    let f = fixture();
    let count_sets = |m: DataModel| -> usize {
        f.bench
            .selected
            .iter()
            .map(|e| sqlkit::analyze_sql(e.sql(m)).set_ops)
            .sum()
    };
    assert_eq!(count_sets(DataModel::V3), 0, "v3 gold must avoid set ops");
    assert!(
        count_sets(DataModel::V1) > 0,
        "some v1 gold should need set ops"
    );
    assert!(count_sets(DataModel::V2) > 0);
}

#[test]
fn v2_needs_most_joins_v3_fewest() {
    // Table 3's ordering: #Joins v2 > v1 > v3.
    let f = fixture();
    let mean_joins = |m: DataModel| -> f64 {
        let total: usize = f
            .bench
            .selected
            .iter()
            .map(|e| sqlkit::analyze_sql(e.sql(m)).joins)
            .sum();
        total as f64 / f.bench.selected.len() as f64
    };
    let (v1, v2, v3) = (
        mean_joins(DataModel::V1),
        mean_joins(DataModel::V2),
        mean_joins(DataModel::V3),
    );
    assert!(v2 > v1, "v2 joins {v2} should exceed v1 {v1}");
    assert!(v1 > v3, "v1 joins {v1} should exceed v3 {v3}");
}

#[test]
fn v3_queries_are_shortest_v2_longest() {
    // Table 3's "Mean Query Length" ordering: v2 > v1 > v3.
    let f = fixture();
    let mean_chars = |m: DataModel| -> f64 {
        let total: usize = f
            .bench
            .selected
            .iter()
            .map(|e| e.sql(m).chars().count())
            .sum();
        total as f64 / f.bench.selected.len() as f64
    };
    let (v1, v2, v3) = (
        mean_chars(DataModel::V1),
        mean_chars(DataModel::V2),
        mean_chars(DataModel::V3),
    );
    assert!(
        v2 > v1 && v1 > v3,
        "lengths v1={v1:.0} v2={v2:.0} v3={v3:.0}"
    );
}

#[test]
fn referential_integrity_holds_in_all_instances() {
    let f = fixture();
    for (m, db) in &f.dbs {
        let violations = db.check_foreign_keys();
        assert!(violations.is_empty(), "{m}: {violations:?}");
    }
}
