//! Determinism guarantees of the performance pipeline.
//!
//! The parallel scheduler and the query-result cache are required to be
//! semantically invisible: any thread count must reproduce the serial
//! reference output bit-for-bit, and a memoized execution must score
//! exactly like a fresh one. These tests pin both properties at the
//! experiment-grid level.

use evalkit::{run_config, run_finetuned_grid, set_thread_override, EvalSetup, RunResult};
use footballdb::DataModel;
use textosql::{Budget, SystemKind};

fn assert_runs_identical(a: &[RunResult], b: &[RunResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.system, y.system);
        assert_eq!(x.model, y.model);
        assert_eq!(x.items.len(), y.items.len());
        for (i, j) in x.items.iter().zip(&y.items) {
            assert_eq!(i.item_id, j.item_id);
            assert_eq!(
                i.outcome, j.outcome,
                "{}/{}/item {}",
                x.system, x.model, i.item_id
            );
            assert_eq!(i.latency.to_bits(), j.latency.to_bits());
            assert_eq!(i.shots_used, j.shots_used);
        }
    }
}

#[test]
fn grid_output_is_independent_of_thread_count() {
    let setup = EvalSetup::small(23);

    set_thread_override(Some(1));
    let serial = run_finetuned_grid(&setup, &[100]);

    set_thread_override(Some(4));
    setup.clear_query_caches();
    let parallel = run_finetuned_grid(&setup, &[100]);
    set_thread_override(None);

    assert_runs_identical(&serial, &parallel);
}

#[test]
fn cached_and_uncached_runs_score_identically() {
    let setup = EvalSetup::small(29);
    let pool = &setup.benchmark.train[..40.min(setup.benchmark.train.len())];

    setup.set_query_caches_enabled(false);
    let uncached = run_config(
        &setup,
        SystemKind::Gpt35,
        DataModel::V2,
        Budget::FewShot(10),
        pool,
        "cache-eq",
    );

    setup.set_query_caches_enabled(true);
    setup.clear_query_caches();
    let cached = run_config(
        &setup,
        SystemKind::Gpt35,
        DataModel::V2,
        Budget::FewShot(10),
        pool,
        "cache-eq",
    );

    assert_runs_identical(
        std::slice::from_ref(&uncached),
        std::slice::from_ref(&cached),
    );
    let stats = setup.cache_stats();
    assert!(stats.hits > 0, "memoization never engaged: {stats:?}");
}
