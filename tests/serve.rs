//! Integration: the concurrent serving layer.
//!
//! Three contracts, each the load-bearing invariant of one serving
//! subsystem:
//!
//! 1. **Shard accounting under contention** — 8 threads released off a
//!    barrier hammer one sharded `QueryCache` with overlapping query
//!    sets; afterwards every shard's `builds` must equal its stored
//!    entry count (the racing-miss single-build invariant, per shard).
//! 2. **Serve determinism** — two full serve runs with the same seed
//!    (fresh snapshots each) must render byte-identical deterministic
//!    sections, the property `BENCH_serve.json` asserts on every
//!    generation.
//! 3. **Watermark reporting** — the serve worker pool must raise the
//!    shared `observed_threads()` watermark the benchmark records,
//!    exactly like the `par_map` pools do.

use serve::{AdmissionPolicy, BurstSpec, ServeConfig};
use sqlengine::{Catalog, DataType, Database, QueryCache, TableSchema, Value};
use std::sync::{Barrier, Mutex, OnceLock};

/// The watermark and thread-override are process-global; tests that
/// read or reset them serialize here.
static WATERMARK_LOCK: Mutex<()> = Mutex::new(());

fn tiny_db() -> Database {
    let catalog = Catalog::new(vec![TableSchema::new("t")
        .column("id", DataType::Int)
        .column("v", DataType::Int)
        .pk(&["id"])]);
    let mut db = Database::new(catalog);
    for i in 0..64 {
        db.insert("t", vec![Value::Int(i), Value::Int(i * 7 % 13)])
            .unwrap();
    }
    db
}

#[test]
fn barrier_stress_keeps_per_shard_builds_equal_to_entries() {
    let db = tiny_db();
    let cache = QueryCache::new();
    let threads = 8;
    let barrier = Barrier::new(threads);
    // Overlapping slices of one query population: every query is
    // raced by several threads, across many shards.
    let queries: Vec<String> = (0..48)
        .map(|i| format!("SELECT v FROM t WHERE id = {i}"))
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (cache, db, barrier, queries) = (&cache, &db, &barrier, &queries);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..3 {
                    for j in 0..queries.len() {
                        // Each worker walks the population from its own
                        // offset so shard lock order varies per thread.
                        let sql = &queries[(j + worker * 7 + round) % queries.len()];
                        cache.execute_cached(db, sql).unwrap();
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.entries, 48, "every distinct query stored once");
    assert_eq!(
        stats.builds, 48,
        "racing misses must elect exactly one builder per key"
    );
    assert_eq!(cache.shard_drift(), 0, "per-shard builds == entries");
    let populated: usize = cache.shard_stats().iter().filter(|s| s.entries > 0).count();
    assert!(
        populated > 1,
        "48 distinct keys should spread over multiple shards"
    );
    // Totals must equal the per-shard sums the drift check walked.
    let (sum_builds, sum_entries) = cache
        .shard_stats()
        .iter()
        .fold((0u64, 0usize), |(b, e), s| (b + s.builds, e + s.entries));
    assert_eq!((sum_builds, sum_entries), (stats.builds, stats.entries));
}

fn small_serve_config() -> (ServeConfig, nlq::gold::PipelineConfig) {
    let cfg = ServeConfig {
        seed: 11,
        threads: 4,
        rates_qps: vec![40.0, 120.0],
        duration_s: 1.5,
        zipf_s: 1.0,
        hazard_fraction: 0.05,
        burst: BurstSpec::default(),
        policy: AdmissionPolicy::default(),
    };
    let pipeline = nlq::gold::PipelineConfig {
        raw_questions: 700,
        pool_size: 260,
        selected_size: 120,
        test_size: 40,
        clusters: 13,
        ..nlq::gold::PipelineConfig::default()
    };
    (cfg, pipeline)
}

#[test]
fn serve_runs_are_byte_identical_and_invariants_hold() {
    static REPORTS: OnceLock<(String, String)> = OnceLock::new();
    let (a, b) = REPORTS.get_or_init(|| {
        let (cfg, pipeline) = small_serve_config();
        let a = serve::run(&cfg, &pipeline);
        let b = serve::run(&cfg, &pipeline);
        (a.deterministic_json("  "), b.deterministic_json("  "))
    });
    assert_eq!(
        a, b,
        "two serve runs with one seed must render identical deterministic sections"
    );
    // The section carries the serving invariants; pin them here too so
    // a regression fails with a named assertion, not a string diff.
    assert!(a.contains("\"escaped_panics\": 0"), "{a}");
    assert!(a.contains("\"shard_drift\": 0"), "{a}");
    // The injected hazards must actually exercise admission control.
    let shed: u64 = a
        .lines()
        .filter_map(|l| l.trim().strip_prefix("\"shed_runaway\": "))
        .map(|v| v.trim_end_matches(',').parse::<u64>().unwrap())
        .sum();
    assert!(shed > 0, "workload hazards should trip the governor:\n{a}");
}

#[test]
fn serve_pool_reports_into_observed_threads_watermark() {
    let _guard = WATERMARK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let state = serve::ServeState::build();
    // An empty stream: workers spawn, find no work, and exit — but the
    // pool must still report its width. 24 exceeds anything par_map
    // could have recorded concurrently (tests cap at 8 workers), so
    // the watermark reading below is attributable to this pool.
    let width = 24;
    let report = serve::pool::replay(
        &state,
        &[],
        &[],
        &std::collections::HashMap::new(),
        width,
        &AdmissionPolicy::default(),
    );
    assert_eq!(report.threads, width);
    assert_eq!((report.executed, report.escaped_panics), (0, 0));
    assert!(
        evalkit::observed_threads() >= width,
        "serve pools must raise the same observed-threads watermark \
         the benchmark harness records for par_map pools"
    );
}
