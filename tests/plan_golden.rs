//! Golden-plan snapshots.
//!
//! Pins the *entire* rendered plan — not substrings — for one
//! representative query per planner decision: predicate pushdown,
//! access-path choice, index nested-loop joins, hash joins with their
//! cost-chosen build side, cost-based join reordering, left-join
//! residuals, derived tables, the aggregation/ordering tail, and the
//! executor-routing line. EXPLAIN renders the one `sqlengine::plan`
//! tree both executors obey, so any drift in these snapshots is a
//! planner behavior change and must be reviewed as one.

use sqlengine::{
    explain_sql, set_force_seqscan, set_vectorized, Catalog, DataType, Database, TableSchema, Value,
};
use std::sync::Mutex;

/// Serializes tests in this binary: some toggle the process-global
/// planner overrides.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn mode_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_force_seqscan(None);
    set_vectorized(None);
    guard
}

fn fixture() -> Database {
    let mut db = Database::new(Catalog::new(vec![
        TableSchema::new("t")
            .column("id", DataType::Int)
            .column("x", DataType::Int)
            .pk(&["id"]),
        TableSchema::new("u")
            .column("id", DataType::Int)
            .column("y", DataType::Int)
            .pk(&["id"]),
    ]));
    for i in 0..5 {
        db.insert("t", vec![Value::Int(i), Value::Int(i * 10)])
            .unwrap();
        db.insert("u", vec![Value::Int(i), Value::Int(i + 100)])
            .unwrap();
    }
    db
}

#[track_caller]
fn assert_plan(db: &Database, sql: &str, golden: &str) {
    let plan = explain_sql(db, sql).unwrap();
    assert_eq!(plan, golden, "plan drifted for: {sql}\n--- got ---\n{plan}");
}

#[test]
fn golden_pushdown_and_index_nested_loop() {
    let _g = mode_guard();
    let db = fixture();
    assert_plan(
        &db,
        "SELECT a.x FROM t AS a JOIN u AS b ON a.id = b.id WHERE a.x > 1 AND b.y = 103",
        "select (1 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t AS a [5 row(s)] filter: a.x > 1 via seq scan\n\
         \u{20} index nested-loop join u AS b [5 row(s)] filter: b.y = 103 \
         via index lookup(b.id) on a.id = b.id\n",
    );
}

#[test]
fn golden_index_scan_access_path() {
    let _g = mode_guard();
    let db = fixture();
    assert_plan(
        &db,
        "SELECT x FROM t WHERE id = 3",
        "select (1 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t [5 row(s)] filter: id = 3 via index lookup(t.id)\n",
    );
    // The forced-seqscan override flows through the plan, and with it
    // the rendered access path.
    set_force_seqscan(Some(true));
    let plan = explain_sql(&db, "SELECT x FROM t WHERE id = 3").unwrap();
    set_force_seqscan(None);
    assert_eq!(
        plan,
        "select (1 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t [5 row(s)] filter: id = 3 via seq scan\n",
    );
}

#[test]
fn golden_left_join_residual() {
    let _g = mode_guard();
    let db = fixture();
    assert_plan(
        &db,
        "SELECT a.x FROM t AS a LEFT JOIN u AS b ON a.id = b.id WHERE b.y = 103",
        "select (1 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t AS a [5 row(s)] via seq scan\n\
         \u{20} hash join (build right) (left outer) u AS b [5 row(s)] \
         via seq scan on a.id = b.id\n\
         \u{20} residual filter: b.y = 103\n",
    );
}

#[test]
fn golden_cost_based_join_reorder() {
    let _g = mode_guard();
    let mut db = Database::new(Catalog::new(vec![
        TableSchema::new("t")
            .column("id", DataType::Int)
            .pk(&["id"]),
        TableSchema::new("big")
            .column("tid", DataType::Int)
            .column("v", DataType::Int),
        TableSchema::new("small")
            .column("tid", DataType::Int)
            .column("w", DataType::Int),
    ]));
    for i in 0..4 {
        db.insert("t", vec![Value::Int(i)]).unwrap();
        db.insert("small", vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    for i in 0..40 {
        db.insert("big", vec![Value::Int(i % 4), Value::Int(i)])
            .unwrap();
    }
    assert_plan(
        &db,
        "SELECT t.id FROM t JOIN big ON big.tid = t.id JOIN small ON small.tid = t.id",
        "select (1 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t [4 row(s)] via seq scan\n\
         \u{20} join order (cost-based): small, big\n\
         \u{20} index nested-loop join small [4 row(s)] \
         via index lookup(small.tid) on small.tid = t.id\n\
         \u{20} index nested-loop join big [40 row(s)] \
         via index lookup(big.tid) on big.tid = t.id\n",
    );
}

#[test]
fn golden_derived_table_hash_join() {
    let _g = mode_guard();
    let db = fixture();
    assert_plan(
        &db,
        "SELECT a.x FROM t AS a JOIN (SELECT id FROM u) AS b ON a.id = b.id",
        "select (1 output column(s))\n\
         \u{20} scan t AS a [5 row(s)] via seq scan\n\
         \u{20} hash join (build left) (subquery) AS b [0 row(s)] on a.id = b.id\n\
         \u{20}   select (1 output column(s))\n\
         \u{20}     executor: vectorized (columnar batches)\n\
         \u{20}     scan u [5 row(s)] via seq scan\n",
    );
}

#[test]
fn golden_aggregation_and_tail() {
    let _g = mode_guard();
    let db = fixture();
    assert_plan(
        &db,
        "SELECT x, count(*) FROM t GROUP BY x HAVING count(*) > 0 ORDER BY x DESC LIMIT 2",
        "select (2 output column(s))\n\
         \u{20} executor: vectorized (columnar batches)\n\
         \u{20} scan t [5 row(s)] via seq scan\n\
         \u{20} aggregate: group by x\n\
         \u{20} having: count(*) > 0\n\
         sort by x DESC NULLS FIRST\n\
         limit 2\n",
    );
}

#[test]
fn golden_row_executor_routing() {
    let _g = mode_guard();
    let db = fixture();
    // Forcing the row engine removes only the routing line; every
    // planner decision stays identical.
    set_vectorized(Some(false));
    let plan = explain_sql(&db, "SELECT x FROM t WHERE id = 3").unwrap();
    set_vectorized(None);
    assert_eq!(
        plan,
        "select (1 output column(s))\n\
         \u{20} scan t [5 row(s)] filter: id = 3 via index lookup(t.id)\n",
    );
}
