//! Determinism guarantees of the trace layer.
//!
//! A trace's deterministic counters (span structure, rows out, fuel
//! charged) are required to be a pure function of (database, query,
//! planner configuration): byte-identical across thread counts, cold
//! versus memoized execution, and — via the logical digest, which
//! abstracts scan placement — across indexed and forced-seqscan access
//! paths. Wall-clock, index-probe, and cache hit/miss fields carry no
//! such guarantee and are excluded from the digests. These tests pin
//! all of that, plus the regression the layer exists for: concurrent
//! queries must never cross-contaminate each other's stage accounting
//! (the failure mode of the old global stage-timing atomics).

use evalkit::{
    run_config, set_thread_override, EvalSetup, ItemTrace, MetricsRegistry, RunResult, STAGES,
};
use footballdb::DataModel;
use sqlengine::{set_force_seqscan, set_vectorized, trace_execute_sql};
use std::sync::{Barrier, Mutex};
use textosql::{Budget, SystemKind};

/// Serializes every test in this binary: they toggle (or depend on) the
/// process-global thread override and forced-seqscan mode. A poisoned
/// lock is fine to reuse — each test resets the state it needs.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn mode_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_force_seqscan(None);
    set_vectorized(None);
    set_thread_override(None);
    guard
}

/// The deterministic projection of an [`ItemTrace`]: per-stage span
/// counts, rows, and fuel. Wall-clock and the access-path counters
/// (index probes, cache hits/misses) are scheduling- or mode-dependent
/// and deliberately left out.
fn det(t: &ItemTrace) -> Vec<(u64, u64, u64, u64)> {
    STAGES
        .iter()
        .map(|&s| {
            let a = t.stage(s);
            (a.calls, a.rows_out, a.fuel_steps, a.fuel_cells)
        })
        .collect()
}

fn assert_det_traces_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.items.len(), b.items.len());
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(
            det(&x.trace),
            det(&y.trace),
            "{what}: item {} counter trees diverged",
            x.item_id
        );
    }
}

#[test]
fn per_item_counters_are_identical_across_thread_counts() {
    let _guard = mode_guard();
    let setup = EvalSetup::small(31);
    let pool = &setup.benchmark.train[..20.min(setup.benchmark.train.len())];
    let run = |label: &str| {
        run_config(
            &setup,
            SystemKind::T5PicardKeys,
            DataModel::V2,
            Budget::FineTuned(100),
            pool,
            label,
        )
    };

    set_thread_override(Some(1));
    setup.clear_query_caches();
    let serial = run("trace-threads");

    set_thread_override(Some(8));
    setup.clear_query_caches();
    let pooled = run("trace-threads");
    set_thread_override(None);

    assert_det_traces_identical(&serial, &pooled, "1 vs 8 threads");
    // The aggregated registry view must agree byte-for-byte too — this
    // is the same invariant `profile` asserts before writing
    // BENCH_profile.json.
    let a = MetricsRegistry::from_runs([&serial]).deterministic_json("");
    let b = MetricsRegistry::from_runs([&pooled]).deterministic_json("");
    assert_eq!(a, b);
}

#[test]
fn per_item_counters_are_identical_cold_and_cached() {
    let _guard = mode_guard();
    let setup = EvalSetup::small(37);
    let pool = &setup.benchmark.train[..20.min(setup.benchmark.train.len())];
    let run = |label: &str| {
        run_config(
            &setup,
            SystemKind::Gpt35,
            DataModel::V3,
            Budget::FewShot(10),
            pool,
            label,
        )
    };

    setup.set_query_caches_enabled(true);
    setup.clear_query_caches();
    let cold = run("trace-cache");
    // Same config again on warm caches: hits replay the fill-time
    // counter tree, so the deterministic projection must not move.
    let warm = run("trace-cache");

    assert_det_traces_identical(&cold, &warm, "cold vs cached");
    let warm_hits: u64 = warm.items.iter().map(|i| i.trace.cache_hits).sum();
    assert!(warm_hits > 0, "memoization never engaged");
}

#[test]
fn logical_digest_is_identical_for_indexed_and_seqscan_paths() {
    let _guard = mode_guard();
    let setup = EvalSetup::small(41);
    let mut indexed_probes = 0u64;
    let mut compared = 0usize;
    for model in DataModel::ALL {
        let db = setup.db(model);
        for item in &setup.benchmark.test {
            let sql = item.sql(model);

            set_force_seqscan(Some(false));
            let (indexed_res, indexed) = trace_execute_sql(db, sql);

            set_force_seqscan(Some(true));
            let (seq_res, seq) = trace_execute_sql(db, sql);

            assert_eq!(indexed_res.is_ok(), seq_res.is_ok(), "{model} {sql}");
            assert_eq!(
                indexed.logical_digest(),
                seq.logical_digest(),
                "{model} {sql}"
            );
            indexed_probes += ItemTrace::from_span(&indexed).index_probes;
            compared += 1;
        }
    }
    set_force_seqscan(None);
    assert!(compared > 0);
    // The comparison is only meaningful if the indexed pass actually
    // took index access paths somewhere.
    assert!(indexed_probes > 0, "no query used an index path");
}

#[test]
fn counter_tree_is_identical_for_vectorized_and_row_executors() {
    let _guard = mode_guard();
    let setup = EvalSetup::small(47);
    let mut compared = 0usize;
    let mut vectorized_batches = 0u64;
    for model in DataModel::ALL {
        let db = setup.db(model);
        for item in &setup.benchmark.test {
            let sql = item.sql(model);

            set_vectorized(Some(true));
            let (vec_res, vec_span) = trace_execute_sql(db, sql);

            set_vectorized(Some(false));
            let (row_res, row_span) = trace_execute_sql(db, sql);

            assert_eq!(vec_res.is_ok(), row_res.is_ok(), "{model} {sql}");
            if let (Ok(a), Ok(b)) = (&vec_res, &row_res) {
                assert_eq!(a, b, "{model} {sql}");
            }
            // Not just the logical digest: the full deterministic
            // counter tree — every span, stage, row count, and fuel
            // charge — is identical between the executors. Only the
            // advisory batches_out column may differ.
            assert_eq!(
                vec_span.counter_tree(),
                row_span.counter_tree(),
                "{model} {sql}"
            );
            vectorized_batches += ItemTrace::from_span(&vec_span)
                .stages
                .iter()
                .map(|s| s.batches_out)
                .sum::<u64>();
            compared += 1;
        }
    }
    set_vectorized(None);
    assert!(compared > 0);
    // The comparison is only meaningful if the vectorized executor
    // actually ran somewhere (batches_out is its signature).
    assert!(
        vectorized_batches > 0,
        "no query took the vectorized executor"
    );
}

#[test]
fn concurrent_queries_do_not_cross_contaminate_traces() {
    let _guard = mode_guard();
    let setup = EvalSetup::small(43);
    let db = setup.db(DataModel::V1);
    // Deliberately heterogeneous load: heavy joins next to point
    // lookups, so any leakage between collectors would move a counter.
    let queries: Vec<&str> = setup
        .benchmark
        .test
        .iter()
        .take(8)
        .map(|e| e.sql(DataModel::V1))
        .collect();
    assert_eq!(queries.len(), 8);

    let reference: Vec<String> = queries
        .iter()
        .map(|sql| trace_execute_sql(db, sql).1.counter_tree())
        .collect();

    for _round in 0..4 {
        let barrier = Barrier::new(queries.len());
        let trees: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|sql| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        // Maximize overlap: all eight queries release
                        // into the engine at once.
                        barrier.wait();
                        trace_execute_sql(db, sql).1.counter_tree()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, (concurrent, serial)) in trees.iter().zip(&reference).enumerate() {
            assert_eq!(
                concurrent, serial,
                "query {i} ({}) picked up another query's spans",
                queries[i]
            );
        }
    }
}
