//! Integration: the full evaluation pipeline end to end.
//!
//! Exercises the harness across crates: dataset → benchmark → systems →
//! EX metric → breakdowns, checking the paper's qualitative findings
//! (who wins, which direction data models move accuracy, latency
//! ordering) rather than exact percentages.

use evalkit::breakdown::by_hardness;
use evalkit::{run_config, run_latency, EvalSetup};
use footballdb::DataModel;
use sqlkit::Hardness;
use std::sync::OnceLock;
use textosql::{Budget, SystemKind};

fn setup() -> &'static EvalSetup {
    static S: OnceLock<EvalSetup> = OnceLock::new();
    S.get_or_init(|| {
        EvalSetup::with_config(
            17,
            &nlq::PipelineConfig {
                raw_questions: 1500,
                pool_size: 500,
                selected_size: 200,
                test_size: 60,
                clusters: 18,
                ..nlq::PipelineConfig::default()
            },
        )
    })
}

fn accuracy(system: SystemKind, model: DataModel, budget: Budget) -> f64 {
    let s = setup();
    let pool: Vec<_> = s
        .benchmark
        .train
        .iter()
        .take(budget.size().max(1))
        .cloned()
        .collect();
    run_config(s, system, model, budget, &pool, "e2e").accuracy()
}

#[test]
fn best_system_accuracy_is_in_the_forties_not_higher() {
    // The paper's central negative result: even the best configurations
    // top out near 41% on real user queries.
    let best = accuracy(
        SystemKind::T5PicardKeys,
        DataModel::V3,
        Budget::FineTuned(300),
    );
    assert!(
        (0.30..0.52).contains(&best),
        "T5-Picard_Keys v3@300 = {best}"
    );
}

#[test]
fn valuenet_prefers_v3_over_v1() {
    let v1 = accuracy(SystemKind::ValueNet, DataModel::V1, Budget::FineTuned(300));
    let v3 = accuracy(SystemKind::ValueNet, DataModel::V3, Budget::FineTuned(300));
    assert!(
        v3 > v1,
        "ValueNet should gain from the data-model redesign: v1={v1} v3={v3}"
    );
}

#[test]
fn keys_encoding_beats_no_keys_at_full_train() {
    for model in DataModel::ALL {
        let without = accuracy(SystemKind::T5Picard, model, Budget::FineTuned(300));
        let with = accuracy(SystemKind::T5PicardKeys, model, Budget::FineTuned(300));
        assert!(
            with > without - 0.02,
            "{model}: keys {with} vs no-keys {without}"
        );
    }
}

#[test]
fn gpt_beats_llama_across_models() {
    let s = setup();
    for model in DataModel::ALL {
        let pool: Vec<_> = s.benchmark.train.iter().take(30).cloned().collect();
        let gpt = run_config(
            s,
            SystemKind::Gpt35,
            model,
            Budget::FewShot(10),
            &pool,
            "e2e",
        )
        .accuracy();
        let llama = run_config(
            s,
            SystemKind::Llama2,
            model,
            Budget::FewShot(8),
            &pool,
            "e2e",
        )
        .accuracy();
        assert!(gpt > llama, "{model}: GPT {gpt} vs LLaMA {llama}");
    }
}

#[test]
fn zero_shot_is_much_worse_than_fine_tuned() {
    let zero = accuracy(
        SystemKind::T5PicardKeys,
        DataModel::V3,
        Budget::FineTuned(0),
    );
    let full = accuracy(
        SystemKind::T5PicardKeys,
        DataModel::V3,
        Budget::FineTuned(300),
    );
    assert!(zero < full - 0.15, "zero {zero} vs full {full}");
}

#[test]
fn hardness_falloff_matches_figure7_shape() {
    let s = setup();
    let run = run_config(
        s,
        SystemKind::T5PicardKeys,
        DataModel::V3,
        Budget::FineTuned(300),
        &s.benchmark.train,
        "e2e-fig7",
    );
    let buckets = by_hardness(&run);
    let acc = |h: Hardness| {
        buckets
            .iter()
            .find(|(x, _)| *x == h)
            .map(|(_, b)| b.accuracy())
            .unwrap_or(0.0)
    };
    // Easy must clearly beat extra-hard; the paper sees ≈77% vs ≈20%.
    let easy = acc(Hardness::Easy);
    let extra = acc(Hardness::Extra);
    assert!(
        easy > extra + 0.2,
        "easy {easy} should dominate extra {extra}"
    );
}

#[test]
fn latency_reproduces_table7_ordering_and_interactivity() {
    let s = setup();
    let lat = run_latency(s);
    let get = |k: SystemKind| lat.iter().find(|(x, _, _)| *x == k).unwrap();
    // Interactive (< 3s): ValueNet and GPT-3.5 only.
    assert!(get(SystemKind::ValueNet).1 < 3.0);
    assert!(get(SystemKind::Gpt35).1 < 3.5);
    // T5-Picard is in minutes; the keys variant roughly halves it.
    assert!(get(SystemKind::T5Picard).1 > 400.0);
    assert!(get(SystemKind::T5PicardKeys).1 > 150.0);
    assert!(get(SystemKind::T5Picard).1 > 1.5 * get(SystemKind::T5PicardKeys).1);
    // LLaMA2 sits between.
    let llama = get(SystemKind::Llama2).1;
    assert!((10.0..80.0).contains(&llama), "llama = {llama}");
}

#[test]
fn evaluation_is_reproducible_under_a_fixed_seed() {
    let s = setup();
    let pool: Vec<_> = s.benchmark.train.iter().take(100).cloned().collect();
    let a = run_config(
        s,
        SystemKind::ValueNet,
        DataModel::V2,
        Budget::FineTuned(100),
        &pool,
        "repro-check",
    );
    let b = run_config(
        s,
        SystemKind::ValueNet,
        DataModel::V2,
        Budget::FineTuned(100),
        &pool,
        "repro-check",
    );
    assert_eq!(a.accuracy(), b.accuracy());
    for (x, y) in a.items.iter().zip(&b.items) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.latency, y.latency);
    }
}
