//! Integration: the differential conformance harness.
//!
//! Drives `sqlengine::conformance` end to end at test scale — the
//! semantics oracles, a seeded generated corpus under all four engine
//! configurations plus the reference interpreter, and minimized-repro
//! regression pins for the bugs the harness originally flushed out.
//!
//! The full-scale sweep (5 seeds x 1200 queries, plus the thread-count
//! and gold-pair axes that need `evalkit`/`nlq`) lives in
//! `cargo run --release -p bench --bin conformance`.

use sqlengine::conformance::{
    check_case, check_dialect_oracles, check_oracles, corpus_db, gen_corpus, gen_dialect_corpus,
    minimize_sql, run_corpus, run_dialect_corpus, CorpusConfig,
};
use sqlengine::{
    execute_sql, planner_config_fingerprint, set_dialect, set_force_seqscan, set_vectorized,
    Catalog, DataType, Database, Dialect, QueryCache, TableSchema, Value,
};
use std::sync::Mutex;

/// Serializes every test that toggles (or observes the effect of) the
/// process-global forced-seqscan, vectorization, or dialect modes. A
/// poisoned lock is fine to reuse — the state it guards is reset on
/// each acquisition.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn mode_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_force_seqscan(None);
    set_vectorized(None);
    set_dialect(None);
    guard
}

fn null_db() -> Database {
    let mut db = Database::new(Catalog::new(vec![TableSchema::new("t")
        .column("id", DataType::Int)
        .column("v", DataType::Int)
        .pk(&["id"])]));
    for (id, v) in [
        (1, Some(3)),
        (2, None),
        (3, Some(1)),
        (4, None),
        (5, Some(2)),
        (6, Some(1)),
    ] {
        let v = v.map_or(Value::Null, Value::Int);
        db.insert("t", vec![Value::Int(id), v]).unwrap();
    }
    db
}

#[test]
fn oracle_semantics_hold_on_both_executors() {
    let _g = mode_guard();
    let failures = check_oracles();
    assert!(
        failures.is_empty(),
        "{} oracle failure(s):\n{}",
        failures.len(),
        failures
            .iter()
            .map(|f| format!("[{} on {}] {}: {}", f.check, f.executor, f.sql, f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn generated_corpus_is_conformant_on_every_seed() {
    let _g = mode_guard();
    for seed in 40..44 {
        let db = corpus_db(seed);
        let corpus = gen_corpus(&CorpusConfig { seed, queries: 150 });
        let report = run_corpus(&db, &corpus);
        assert!(
            report.is_clean(),
            "seed {seed}: {} divergence(s), first:\n{}",
            report.divergences.len(),
            report.divergences[0]
        );
        assert_eq!(report.queries, 150);
    }
}

#[test]
fn check_case_reports_nothing_for_conformant_queries() {
    let _g = mode_guard();
    let db = corpus_db(1);
    let cache = QueryCache::new();
    for sql in [
        "SELECT squad, count(*) AS n FROM player GROUP BY squad ORDER BY 2 DESC, 1",
        "SELECT p.pid FROM player AS p LEFT JOIN appearance AS a ON p.pid = a.pid \
         ORDER BY p.pid, a.aid LIMIT 10",
        "SELECT score FROM player INTERSECT ALL SELECT minutes FROM appearance",
    ] {
        assert!(check_case(&db, &cache, sql).is_none(), "diverged: {sql}");
    }
}

/// Regression (cache staleness): the result cache used to key on query
/// text alone, so flipping a planner toggle could serve a result (or
/// error) computed under the other configuration. The key now includes
/// the planner-config fingerprint; flipping the toggle must miss, not
/// hit stale.
#[test]
fn query_cache_does_not_serve_results_across_planner_configs() {
    let _g = mode_guard();
    let db = null_db();
    let cache = QueryCache::new();
    let sql = "SELECT v FROM t WHERE id = 3";

    set_force_seqscan(Some(false));
    let fp_indexed = planner_config_fingerprint();
    let indexed = cache.execute_cached(&db, sql).unwrap();
    set_force_seqscan(Some(true));
    let fp_seqscan = planner_config_fingerprint();
    let seqscan = cache.execute_cached(&db, sql).unwrap();
    set_force_seqscan(None);

    assert_ne!(
        fp_indexed, fp_seqscan,
        "planner fingerprint must separate the configs"
    );
    let stats = cache.stats();
    assert_eq!(
        stats.hits, 0,
        "second config must not hit the first's entry"
    );
    assert_eq!(stats.misses, 2);
    // Both entries coexist, and (the engine invariant) agree bit-wise.
    assert_eq!(indexed.rows, seqscan.rows);
}

/// Regression (ORDER BY NULL placement): PostgreSQL sorts NULLs last on
/// ASC and first on DESC; the engine once ranked them smallest, which
/// inverted both. Minimized from a corpus divergence on
/// `SELECT v FROM t ORDER BY v [DESC] LIMIT k`.
#[test]
fn order_by_places_nulls_postgres_style() {
    let _g = mode_guard();
    let db = null_db();
    let asc = execute_sql(&db, "SELECT v FROM t ORDER BY v").unwrap();
    let vals: Vec<Value> = asc.rows.iter().map(|r| r[0].clone()).collect();
    assert_eq!(
        vals,
        vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Null,
            Value::Null
        ]
    );
    let desc = execute_sql(&db, "SELECT v FROM t ORDER BY v DESC").unwrap();
    assert!(desc.rows[0][0].is_null() && desc.rows[1][0].is_null());
    assert_eq!(desc.rows[2][0], Value::Int(3));
}

/// Regression (top-k heap vs full sort): LIMIT k must be bit-identical
/// to the full sort truncated, including NULL placement and stable tie
/// order.
#[test]
fn top_k_is_bit_identical_to_truncated_full_sort() {
    let _g = mode_guard();
    let db = corpus_db(2);
    for sql in [
        "SELECT ratio FROM player ORDER BY ratio",
        "SELECT ratio FROM player ORDER BY ratio DESC",
        "SELECT squad, score FROM player ORDER BY squad DESC, score",
    ] {
        let full = execute_sql(&db, sql).unwrap();
        for k in [1usize, 3, 7, 40, 60] {
            let lim = execute_sql(&db, &format!("{sql} LIMIT {k}")).unwrap();
            let want = &full.rows[..k.min(full.rows.len())];
            assert_eq!(lim.rows, want, "{sql} LIMIT {k}");
        }
    }
}

/// Regression (three-valued NOT IN): a NULL in the IN-list or subquery
/// result makes non-matching probes UNKNOWN, which WHERE filters out —
/// NOT IN over a set containing NULL can never return rows for
/// non-members.
#[test]
fn not_in_with_null_member_returns_no_nonmembers() {
    let _g = mode_guard();
    let db = null_db();
    let rs = execute_sql(&db, "SELECT id FROM t WHERE v NOT IN (9, NULL)").unwrap();
    assert!(rs.rows.is_empty(), "got {:?}", rs.rows);
    // Members of the list are excluded even with a NULL present.
    let rs = execute_sql(&db, "SELECT id FROM t WHERE v IN (1, NULL) ORDER BY id").unwrap();
    let ids: Vec<Value> = rs.rows.iter().map(|r| r[0].clone()).collect();
    assert_eq!(ids, vec![Value::Int(3), Value::Int(6)]);
    // Same through a subquery producing NULLs.
    let rs = execute_sql(&db, "SELECT id FROM t WHERE id NOT IN (SELECT v FROM t)").unwrap();
    assert!(rs.rows.is_empty(), "got {:?}", rs.rows);
}

/// A minimized counterexample must itself be a counterexample: it
/// parses and still satisfies the divergence predicate. The minimizer
/// shrinks by clause-atom count with the clause differ as distance
/// oracle, so the result is also deterministic.
#[test]
fn minimized_counterexamples_parse_and_rediverge() {
    let _g = mode_guard();
    let sql = "SELECT DISTINCT squad, count(*) AS n FROM player \
               WHERE score > 0 AND minutes > 1 AND squad <> 'x' \
               GROUP BY squad, score HAVING count(*) > 0 ORDER BY n DESC, squad LIMIT 7";
    // Divergence predicate: the query still groups by squad.
    let mut diverges = |s: &str| {
        sqlkit::parse_query(s).is_ok_and(|q| {
            let mut grouped = false;
            if let sqlkit::ast::QueryBody::Select(sel) = &q.body {
                grouped = sel
                    .group_by
                    .iter()
                    .any(|e| sqlkit::expr_to_sql(e).contains("squad"));
            }
            grouped
        })
    };
    let min = minimize_sql(sql, &mut diverges);
    let parsed = sqlkit::parse_query(&min).expect("minimized output must parse");
    assert!(diverges(&min), "minimized output must re-diverge: {min}");
    // And it really shrank: every deletable clause that the predicate
    // does not pin is gone.
    assert!(sqlkit::clause_atoms(&parsed) < 10, "did not shrink: {min}");
    assert!(!min.contains("LIMIT"), "kept LIMIT: {min}");
    assert!(!min.contains("WHERE"), "kept WHERE: {min}");
    assert!(!min.contains("ORDER BY"), "kept ORDER BY: {min}");
    // Determinism: minimizing twice yields byte-identical output.
    assert_eq!(min, minimize_sql(sql, &mut diverges));
}

/// A stateful (flaky) predicate that stops reproducing must not yield a
/// non-diverging "minimum": the final re-check falls back to the
/// known-diverging entry form.
#[test]
fn minimizer_never_returns_a_non_reproducing_counterexample() {
    let _g = mode_guard();
    let sql = "SELECT a FROM t WHERE a > 0 LIMIT 3";
    // Diverges a fixed number of times, then never again — the shape of
    // a heisenbug that stops reproducing mid-shrink.
    let mut budget = 3u32;
    let mut flaky = |_: &str| {
        if budget > 0 {
            budget -= 1;
            true
        } else {
            false
        }
    };
    let min = minimize_sql(sql, &mut flaky);
    assert!(
        sqlkit::parse_query(&min).is_ok(),
        "fallback must parse: {min}"
    );
    // The fallback is the canonical entry form, which was verified to
    // diverge before any shrinking happened.
    assert_eq!(min, sqlkit::to_sql(&sqlkit::parse_query(sql).unwrap()));
}

/// Regression (bag-semantics set operations): INTERSECT ALL and EXCEPT
/// ALL respect multiplicities instead of deduplicating.
#[test]
fn bag_set_operations_respect_multiplicities() {
    let _g = mode_guard();
    let db = null_db();
    // v multiset: {3, NULL, 1, NULL, 2, 1}; ids 1..=6.
    let rs = execute_sql(
        &db,
        "SELECT v FROM t WHERE v IS NOT NULL INTERSECT ALL SELECT v FROM t WHERE id >= 3",
    )
    .unwrap();
    // Left bag {3,1,2,1} ∩all right bag {1,NULL,2,1} = {1,2,1}.
    assert_eq!(rs.rows.len(), 3);
    let rs = execute_sql(
        &db,
        "SELECT v FROM t EXCEPT ALL SELECT v FROM t WHERE id > 2",
    )
    .unwrap();
    // {3,N,1,N,2,1} minus {1,N,2,1} leaves {3, N}.
    assert_eq!(rs.rows.len(), 2);
    let rs = execute_sql(&db, "SELECT v FROM t EXCEPT SELECT v FROM t WHERE id > 2").unwrap();
    // Set EXCEPT: distinct left values {3,N,1,2} minus {1,N,2} = {3}.
    assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
}

// ---- cross-dialect axis ---------------------------------------------------

/// Every known-difference scenario holds under both dialects on both
/// engine scan paths and on the reference interpreter, and the
/// divergence classifier attributes each to its declared class.
#[test]
fn dialect_oracles_hold_and_classify() {
    let _g = mode_guard();
    let failures = check_dialect_oracles();
    assert!(
        failures.is_empty(),
        "{} dialect-oracle failure(s):\n{}",
        failures.len(),
        failures
            .iter()
            .map(|f| format!("[{} on {}] {}: {}", f.check, f.executor, f.sql, f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The SQLite dialect must be just as self-consistent as the PostgreSQL
/// one: six planner configurations plus the reference interpreter agree
/// bit-for-bit on the generated corpus (including the dialect-stress
/// templates, which are engineered to sit on the semantic boundary).
#[test]
fn sqlite_dialect_is_self_consistent() {
    let _g = mode_guard();
    for seed in 40..42 {
        let db = corpus_db(seed);
        let mut corpus = gen_corpus(&CorpusConfig { seed, queries: 120 });
        corpus.extend(gen_dialect_corpus(&CorpusConfig { seed, queries: 80 }));
        set_dialect(Some(Dialect::Sqlite));
        let report = run_corpus(&db, &corpus);
        set_dialect(None);
        assert!(
            report.is_clean(),
            "seed {seed}: {} divergence(s) under sqlite, first:\n{}",
            report.divergences.len(),
            report.divergences[0]
        );
    }
}

/// The PostgreSQL dialect stays self-consistent on the dialect-stress
/// templates too (the plain corpus is covered by
/// `generated_corpus_is_conformant_on_every_seed`). This is where the
/// error-producing comparisons (division by zero, unparseable text,
/// invalid boolean forms) must fail identically across all six
/// configurations and the reference interpreter.
#[test]
fn postgres_dialect_is_self_consistent_on_stress_templates() {
    let _g = mode_guard();
    for seed in 40..42 {
        let db = corpus_db(seed);
        let corpus = gen_dialect_corpus(&CorpusConfig { seed, queries: 100 });
        let report = run_corpus(&db, &corpus);
        assert!(
            report.is_clean(),
            "seed {seed}: {} divergence(s) under postgres, first:\n{}",
            report.divergences.len(),
            report.divergences[0]
        );
    }
}

/// The tentpole invariant at test scale: sweeping the corpus across
/// both dialects yields zero unclassified divergences and zero escaped
/// panics, while the stress templates guarantee a healthy population of
/// legitimate, classified differences.
#[test]
fn cross_dialect_sweep_classifies_every_divergence() {
    let _g = mode_guard();
    for seed in 40..43 {
        let db = corpus_db(seed);
        let mut corpus = gen_corpus(&CorpusConfig { seed, queries: 150 });
        corpus.extend(gen_dialect_corpus(&CorpusConfig { seed, queries: 100 }));
        let report = run_dialect_corpus(&db, &corpus);
        assert!(
            report.is_clean(),
            "seed {seed}: {} cross-dialect bug(s), {} panic(s); first:\n{}",
            report.bugs.len(),
            report.panics,
            report.bugs[0]
        );
        assert_eq!(report.queries, 250);
        assert_eq!(report.executions, 500);
        assert!(
            report.legitimate_total() > 0,
            "seed {seed}: stress templates must produce classified divergences"
        );
        assert!(
            report.agreeing > 0,
            "seed {seed}: dialect-neutral queries must agree"
        );
    }
}

/// Regression (latent engine bug, found by the cross-dialect axis): the
/// engine always computed `int / int` as float division and returned
/// NULL on division by zero — SQLite semantics — while everything else
/// claimed PostgreSQL. Under the PostgreSQL dialect, integer division
/// truncates toward zero and division by zero is an evaluation error.
#[test]
fn postgres_integer_division_truncates_and_zero_errors() {
    let _g = mode_guard();
    let db = null_db();
    set_dialect(Some(Dialect::Postgres));
    let rs = execute_sql(&db, "SELECT 7 / 2").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    let rs = execute_sql(&db, "SELECT (0 - 7) / 2").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(-3)]]);
    let err = execute_sql(&db, "SELECT 1 / 0").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    let err = execute_sql(&db, "SELECT 1.5 / 0").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    set_dialect(Some(Dialect::Sqlite));
    let rs = execute_sql(&db, "SELECT 7 / 2").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Float(3.5)]]);
    let rs = execute_sql(&db, "SELECT 1 / 0").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Null]]);
    set_dialect(None);
}

/// Regression (latent engine bug, found while building the dialect
/// axis): equality and index keys collapsed `Int` through `f64`, so
/// integers beyond 2^53 aliased — `9007199254740993 = 9007199254740992`
/// came back true and an index probe could return the wrong row. Exact
/// integer comparison must hold on both scan paths, bit-identically.
#[test]
fn huge_integers_do_not_alias_on_either_scan_path() {
    let _g = mode_guard();
    let mut db = Database::new(Catalog::new(vec![TableSchema::new("big")
        .column("id", DataType::Int)
        .column("v", DataType::Int)
        .pk(&["id"])]));
    let two53 = 9_007_199_254_740_992_i64; // 2^53
    for (id, v) in [(1, two53), (2, two53 + 1), (3, 7)] {
        db.insert("big", vec![Value::Int(id), Value::Int(v)])
            .unwrap();
    }
    let sql = "SELECT id FROM big WHERE v = 9007199254740993";
    let mut outcomes = Vec::new();
    for force in [false, true] {
        set_force_seqscan(Some(force));
        outcomes.push(execute_sql(&db, sql).unwrap());
        set_force_seqscan(None);
    }
    // Only the 2^53 + 1 row matches, and indexed vs forced-seqscan are
    // bit-identical.
    assert_eq!(outcomes[0].rows, vec![vec![Value::Int(2)]]);
    assert_eq!(outcomes[0].rows, outcomes[1].rows);
    assert_eq!(outcomes[0].columns, outcomes[1].columns);
}

/// Regression (latent engine bug, found by the dialect axis): comparing
/// a boolean column to a text literal silently returned false through a
/// `_ => Some(false)` catch-all, regardless of the literal. Under the
/// PostgreSQL dialect boolean input forms parse ('yes' matches true)
/// and garbage errors; under SQLite the pair is simply unequal.
#[test]
fn bool_text_comparison_is_dialect_governed() {
    let _g = mode_guard();
    let mut db = Database::new(Catalog::new(vec![TableSchema::new("f")
        .column("id", DataType::Int)
        .column("flag", DataType::Bool)
        .pk(&["id"])]));
    for (id, b) in [(1, Value::Bool(true)), (2, Value::Bool(false))] {
        db.insert("f", vec![Value::Int(id), b]).unwrap();
    }
    set_dialect(Some(Dialect::Postgres));
    let rs = execute_sql(&db, "SELECT id FROM f WHERE flag = 'yes'").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    let err = execute_sql(&db, "SELECT id FROM f WHERE flag = 'maybe'").unwrap_err();
    assert!(
        err.to_string()
            .contains("invalid input syntax for type boolean"),
        "{err}"
    );
    set_dialect(Some(Dialect::Sqlite));
    let rs = execute_sql(&db, "SELECT id FROM f WHERE flag = 'true'").unwrap();
    assert!(rs.rows.is_empty(), "sqlite never equates bool and text");
    set_dialect(None);
}

/// The planner-config fingerprint separates dialects, so the query
/// cache can never serve one dialect's result to the other.
#[test]
fn query_cache_does_not_serve_results_across_dialects() {
    let _g = mode_guard();
    let db = null_db();
    let cache = QueryCache::new();
    let sql = "SELECT 7 / 2";

    set_dialect(Some(Dialect::Postgres));
    let fp_pg = planner_config_fingerprint();
    let pg = cache.execute_cached(&db, sql).unwrap();
    set_dialect(Some(Dialect::Sqlite));
    let fp_lite = planner_config_fingerprint();
    let lite = cache.execute_cached(&db, sql).unwrap();
    set_dialect(None);

    assert_ne!(fp_pg, fp_lite, "fingerprint must separate dialects");
    assert_eq!(cache.stats().hits, 0, "no cross-dialect cache hit");
    assert_eq!(pg.rows, vec![vec![Value::Int(3)]]);
    assert_eq!(lite.rows, vec![vec![Value::Float(3.5)]]);
}
