//! Robustness integration tests: fuel budgets bound pathological
//! queries, budget aborts never poison the query cache, hazard
//! templates trip identically across access-path modes, and governed
//! runs stay bit-identical under panic injection at any thread count.

use footballdb_repro::evalkit::{run_config_governed, set_thread_override, EvalSetup, Governor};
use footballdb_repro::sqlengine::conformance::{
    check_hazard, corpus_db, gen_hazard_corpus, CorpusConfig,
};
use footballdb_repro::sqlengine::{execute_sql_with_budget, EngineError, ExecBudget, QueryCache};
use footballdb_repro::textosql::{Budget, FaultPlan, SystemKind};
use std::time::Instant;

/// A four-way cross join over the conformance corpus db: 44 × 60 × 44 ×
/// 60 ≈ 7M rows, far past the default step budget.
const RUNAWAY: &str =
    "SELECT p1.pid FROM player AS p1, appearance AS a1, player AS p2, appearance AS a2";

#[test]
fn unbounded_cross_join_is_stopped_in_bounded_time() {
    let db = corpus_db(77);
    let start = Instant::now();
    let res = execute_sql_with_budget(&db, RUNAWAY, &ExecBudget::default());
    let elapsed = start.elapsed();
    match res {
        Err(EngineError::BudgetExceeded { stage, spent }) => {
            assert!(!stage.is_empty());
            assert!(spent > 0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // The default budget caps work at a few million fuel units; even a
    // debug build clears that in well under a minute, while the
    // unbudgeted query would materialize ~7M rows and keep going.
    assert!(
        elapsed.as_secs() < 60,
        "budget abort took {elapsed:?} — not bounded"
    );
}

#[test]
fn budget_abort_never_enters_the_query_cache() {
    let db = corpus_db(78);
    let cache = QueryCache::new();
    let starved = ExecBudget::UNLIMITED.with_max_steps(50);
    let err = cache.execute_budgeted(&db, RUNAWAY, &starved);
    assert!(matches!(err, Err(EngineError::BudgetExceeded { .. })));
    assert_eq!(cache.stats().entries, 0, "aborted result was cached");
    assert_eq!(cache.stats().hits, 0);
}

#[test]
fn hazard_corpus_trips_identically_across_modes() {
    let db = corpus_db(40);
    let budget = ExecBudget::UNLIMITED.with_max_steps(60_000);
    let corpus = gen_hazard_corpus(&CorpusConfig {
        seed: 40,
        queries: 12,
    });
    assert!(!corpus.is_empty());
    for sql in &corpus {
        let (stage, spent) = check_hazard(&db, sql, &budget)
            .unwrap_or_else(|msg| panic!("hazard divergence: {msg}\n  {sql}"));
        assert!(spent >= 60_000, "tripped early at {stage}: {spent}");
    }
}

#[test]
fn hazard_budget_is_thread_local() {
    // A budget installed on one thread must not leak into another: the
    // same runaway query runs unbudgeted-with-huge-cap on a spawned
    // thread while the main thread's budget is starved.
    let db = corpus_db(79);
    let starved = ExecBudget::UNLIMITED.with_max_steps(50);
    let cross = "SELECT player.pid FROM player, appearance";
    let err = execute_sql_with_budget(&db, cross, &starved);
    assert!(matches!(err, Err(EngineError::BudgetExceeded { .. })));
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let roomy = ExecBudget::default();
                let ok = execute_sql_with_budget(&db, cross, &roomy);
                assert!(ok.is_ok(), "fresh thread inherited a starved budget");
            })
            .join()
            .unwrap();
    });
}

#[test]
fn governed_runs_are_thread_invariant_under_panic_injection() {
    // Injected panics are expected output here; keep the log quiet.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let setup = EvalSetup::small(11);
    let pool: Vec<_> = setup.benchmark.train[..10].to_vec();
    let gov = Governor {
        fault_plan: Some(FaultPlan::new(3, 0.4).with_panic_rate(0.1)),
        ..Governor::default()
    };
    let run_at = |threads: usize| {
        set_thread_override(Some(threads));
        let run = run_config_governed(
            &setup,
            SystemKind::Gpt35,
            footballdb_repro::footballdb::DataModel::V1,
            Budget::FewShot(10),
            &pool,
            "robustness",
            &gov,
        );
        set_thread_override(None);
        run
    };
    let serial = run_at(1);
    let pooled = run_at(4);
    std::panic::set_hook(prev);
    assert_eq!(serial.items.len(), pooled.items.len());
    let mut panics = 0usize;
    for (a, b) in serial.items.iter().zip(&pooled.items) {
        assert_eq!(a.item_id, b.item_id);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.failure, b.failure);
        if a.failure == Some(footballdb_repro::evalkit::FailureKind::Panic) {
            panics += 1;
        }
    }
    assert!(
        panics > 0,
        "a 10% panic rate over {} items injected nothing",
        serial.items.len()
    );
    assert_eq!(serial.accuracy(), pooled.accuracy());
}
