//! Property-based tests over the core data structures and invariants.

use footballdb::{generate, load, DataModel};
use nlq::gold::build_raw_corpus;
use proptest::prelude::*;
use sqlengine::{execute_sql, Value};
use std::sync::OnceLock;
use xrng::Rng;

struct Fixture {
    db: sqlengine::Database,
    examples: Vec<nlq::GoldExample>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let domain = generate(footballdb::DEFAULT_SEED);
        let db = load(&domain, DataModel::V3);
        let mut rng = Rng::new(31);
        let examples = build_raw_corpus(&domain, &mut rng, 300);
        Fixture { db, examples }
    })
}

proptest! {
    /// The raw-text normalizer is idempotent on arbitrary input.
    #[test]
    fn normalize_is_idempotent(s in ".{0,200}") {
        let once = sqlkit::normalize(&s);
        prop_assert_eq!(sqlkit::normalize(&once), once);
    }

    /// The lexer never panics, whatever the input.
    #[test]
    fn tokenize_never_panics(s in ".{0,200}") {
        let _ = sqlkit::tokenize(&s);
    }

    /// The parser never panics either (it may error).
    #[test]
    fn parse_never_panics(s in ".{0,200}") {
        let _ = sqlkit::parse_query(&s);
    }

    /// Printer∘parser is a fixed point: canonical SQL re-parses to an
    /// identical AST, for every gold query in the corpus.
    #[test]
    fn print_parse_roundtrip_on_gold(idx in 0usize..300, model_i in 0usize..3) {
        let f = fixture();
        let e = &f.examples[idx % f.examples.len()];
        let model = DataModel::ALL[model_i];
        let q1 = sqlkit::parse_query(e.sql(model)).unwrap();
        let printed = sqlkit::to_sql(&q1);
        let q2 = sqlkit::parse_query(&printed)
            .unwrap_or_else(|err| panic!("reprint failed: {err}\n{printed}"));
        prop_assert_eq!(q1, q2);
    }

    /// Execution accuracy is reflexive: every gold query matches itself.
    #[test]
    fn execution_match_is_reflexive(idx in 0usize..300) {
        let f = fixture();
        let e = &f.examples[idx % f.examples.len()];
        let sql = e.sql(DataModel::V3);
        let out = evalkit::execution_match(&f.db, sql, Some(sql));
        prop_assert_eq!(out, evalkit::ExOutcome::Correct);
    }

    /// Executing the canonical reprint yields the same results as the
    /// original text (printer preserves semantics).
    #[test]
    fn printer_preserves_semantics(idx in 0usize..300) {
        let f = fixture();
        let e = &f.examples[idx % f.examples.len()];
        let sql = e.sql(DataModel::V3);
        let printed = sqlkit::to_sql(&sqlkit::parse_query(sql).unwrap());
        let a = execute_sql(&f.db, sql).unwrap();
        let b = execute_sql(&f.db, &printed).unwrap();
        prop_assert!(a.matches(&b), "reprint changed results:\n{}\nvs\n{}", sql, printed);
    }

    /// The deterministic RNG respects bounds.
    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Value total order is antisymmetric and consistent with equality.
    #[test]
    fn value_total_order_is_consistent(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert!(a.group_eq(&b));
        }
    }

    /// Value total order is transitive.
    #[test]
    fn value_total_order_is_transitive(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (a.total_cmp(&b), b.total_cmp(&c), a.total_cmp(&c));
        if ab != Greater && bc != Greater {
            prop_assert_ne!(ac, Greater);
        }
    }

    /// SQL LIKE agrees with direct equality for patterns without
    /// wildcards.
    #[test]
    fn like_without_wildcards_is_equality(s in "[a-zA-Z ]{0,20}", t in "[a-zA-Z ]{0,20}") {
        prop_assert_eq!(sqlengine::like_match(&s, &t), s == t);
    }

    /// `%pattern%` matches exactly the containment relation.
    #[test]
    fn like_percent_wrapping_is_contains(s in "[a-z]{0,15}", inner in "[a-z]{1,5}") {
        let pattern = format!("%{inner}%");
        prop_assert_eq!(sqlengine::like_match(&s, &pattern), s.contains(&inner));
    }

    /// Embedding cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_is_symmetric_and_bounded(a in ".{1,60}", b in ".{1,60}") {
        let (ea, eb) = (nlq::embed::embed(&a), nlq::embed::embed(&b));
        let ab = nlq::embed::cosine(&ea, &eb);
        let ba = nlq::embed::cosine(&eb, &ea);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.01..=1.01).contains(&ab));
    }

    /// Query analysis never panics on arbitrary text and reports
    /// non-trivial lengths for non-empty input.
    #[test]
    fn analyze_sql_total(s in ".{1,120}") {
        let stats = sqlkit::analyze_sql(&s);
        prop_assert!(stats.chars > 0);
    }
}

proptest! {
    /// count(*) under a filter equals the cardinality of the projected
    /// rows under the same filter.
    #[test]
    fn count_star_equals_row_cardinality(team_idx in 0usize..86) {
        let f = fixture();
        let team = &footballdb::names::NATIONAL_TEAMS[team_idx].0;
        let c = execute_sql(
            &f.db,
            &format!("SELECT count(*) FROM plays_match WHERE teamname = '{team}'"),
        ).unwrap();
        let rows = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM plays_match WHERE teamname = '{team}'"),
        ).unwrap();
        prop_assert_eq!(c.rows[0][0].clone(), Value::Int(rows.len() as i64));
    }

    /// DISTINCT never returns more rows than ALL.
    #[test]
    fn distinct_is_a_contraction(col in prop_oneof![
        Just("team_role"), Just("teamname"), Just("goals"), Just("result")
    ]) {
        let f = fixture();
        let all = execute_sql(&f.db, &format!("SELECT {col} FROM plays_match")).unwrap();
        let distinct = execute_sql(
            &f.db,
            &format!("SELECT DISTINCT {col} FROM plays_match"),
        ).unwrap();
        prop_assert!(distinct.len() <= all.len());
        prop_assert!(!distinct.is_empty());
    }

    /// LIMIT k returns at most k rows, and a prefix of the unlimited
    /// ordered result.
    #[test]
    fn limit_truncates_ordered_results(k in 1u64..40) {
        let f = fixture();
        let full = execute_sql(
            &f.db,
            "SELECT match_id FROM plays_match ORDER BY match_id, team_id",
        ).unwrap();
        let lim = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM plays_match ORDER BY match_id, team_id LIMIT {k}"),
        ).unwrap();
        prop_assert!(lim.len() as u64 <= k);
        prop_assert_eq!(&full.rows[..lim.len()], &lim.rows[..]);
    }

    /// Adding a conjunct never increases the result cardinality.
    #[test]
    fn conjunction_is_monotone(year_idx in 0usize..22) {
        let f = fixture();
        let year = footballdb::names::WORLD_CUPS[year_idx].0;
        let base = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM match WHERE year = {year}"),
        ).unwrap();
        let narrowed = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM match WHERE year = {year} AND round = 'Final'"),
        ).unwrap();
        prop_assert!(narrowed.len() <= base.len());
        prop_assert_eq!(narrowed.len(), 1, "every cup has exactly one final");
    }

    /// UNION ALL cardinality is the sum of its arms; UNION's is at most
    /// that sum.
    #[test]
    fn union_cardinalities(year_idx in 0usize..22) {
        let f = fixture();
        let year = footballdb::names::WORLD_CUPS[year_idx].0;
        let a = execute_sql(
            &f.db,
            &format!("SELECT teamname FROM plays_match AS p JOIN match AS m \
                      ON p.match_id = m.match_id WHERE m.year = {year}"),
        ).unwrap();
        let both = execute_sql(
            &f.db,
            &format!("SELECT teamname FROM plays_match AS p JOIN match AS m \
                      ON p.match_id = m.match_id WHERE m.year = {year} \
                      UNION ALL \
                      SELECT teamname FROM plays_match AS p JOIN match AS m \
                      ON p.match_id = m.match_id WHERE m.year = {year}"),
        ).unwrap();
        prop_assert_eq!(both.len(), 2 * a.len());
        let dedup = execute_sql(
            &f.db,
            &format!("SELECT teamname FROM plays_match AS p JOIN match AS m \
                      ON p.match_id = m.match_id WHERE m.year = {year} \
                      UNION \
                      SELECT teamname FROM plays_match AS p JOIN match AS m \
                      ON p.match_id = m.match_id WHERE m.year = {year}"),
        ).unwrap();
        prop_assert!(dedup.len() <= a.len());
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|v| Value::Int(v as i64)),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::text),
    ]
}

#[test]
fn hardness_uniform_sampling_never_exceeds_pool() {
    let f = fixture();
    let pool: Vec<usize> = (0..f.examples.len()).collect();
    let mut rng = Rng::new(5);
    let sel = nlq::gold::hardness_uniform_sample(&f.examples, &pool, 10_000, &mut rng);
    assert!(sel.len() <= f.examples.len());
    let mut sorted = sel.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), sel.len(), "sampling produced duplicates");
}
