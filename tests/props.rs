//! Randomized property tests over the core data structures and
//! invariants.
//!
//! Formerly a `proptest` suite; rewritten on top of the in-tree
//! deterministic [`xrng::Rng`] so the default test run builds with no
//! external dependencies (the sandbox is offline). Each property draws a
//! fixed number of pseudo-random cases from a seeded generator, so
//! failures are reproducible by construction.

use footballdb::{generate, load, DataModel};
use nlq::gold::build_raw_corpus;
use sqlengine::{execute_sql, set_force_seqscan, Dialect, Value};
use std::sync::{Mutex, OnceLock};
use xrng::Rng;

/// Serializes the tests that toggle the process-global forced-seqscan
/// mode (the other tests in this binary only assert mode-independent
/// facts). A poisoned lock is reusable; the guarded state is reset by
/// each user.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Cases per property; in the same ballpark as proptest's default.
const CASES: usize = 192;

struct Fixture {
    db: sqlengine::Database,
    examples: Vec<nlq::GoldExample>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let domain = generate(footballdb::DEFAULT_SEED);
        let db = load(&domain, DataModel::V3);
        let mut rng = Rng::new(31);
        let examples = build_raw_corpus(&domain, &mut rng, 300);
        Fixture { db, examples }
    })
}

/// An arbitrary string of up to `max_len` characters, mixing printable
/// ASCII with a few multi-byte code points (the old suite used `.{0,N}`).
fn rand_string(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| {
            if rng.below(12) == 0 {
                ['é', 'λ', '中', 'ß', '∑', '—'][rng.below(6) as usize]
            } else {
                char::from_u32(0x20 + rng.below(95) as u32).unwrap()
            }
        })
        .collect()
}

/// A string from the character class `[chars]{min_len,max_len}`.
fn rand_from(rng: &mut Rng, chars: &[char], min_len: usize, max_len: usize) -> String {
    let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
    (0..len)
        .map(|_| chars[rng.below(chars.len() as u64) as usize])
        .collect()
}

fn alpha_space() -> Vec<char> {
    let mut c: Vec<char> = ('a'..='z').chain('A'..='Z').collect();
    c.push(' ');
    c
}

fn rand_value(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 1),
        2 => Value::Int(rng.next_u64() as i32 as i64),
        3 => Value::Float((rng.next_u64() as i32 as f64) / 2_147.0),
        _ => {
            let mut chars: Vec<char> = ('a'..='z').chain('0'..='9').collect();
            chars.push(' ');
            Value::text(rand_from(rng, &chars, 0, 12))
        }
    }
}

/// The raw-text normalizer is idempotent on arbitrary input.
#[test]
fn normalize_is_idempotent() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..CASES {
        let s = rand_string(&mut rng, 200);
        let once = sqlkit::normalize(&s);
        assert_eq!(sqlkit::normalize(&once), once);
    }
}

/// The lexer never panics, whatever the input.
#[test]
fn tokenize_never_panics() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..CASES {
        let _ = sqlkit::tokenize(&rand_string(&mut rng, 200));
    }
}

/// The parser never panics either (it may error).
#[test]
fn parse_never_panics() {
    let mut rng = Rng::new(0xCAFE);
    for _ in 0..CASES {
        let _ = sqlkit::parse_query(&rand_string(&mut rng, 200));
    }
}

/// Printer∘parser is a fixed point: canonical SQL re-parses to an
/// identical AST, for every gold query in the corpus.
#[test]
fn print_parse_roundtrip_on_gold() {
    let f = fixture();
    let mut rng = Rng::new(0xD00D);
    for _ in 0..CASES {
        let e = &f.examples[rng.below(f.examples.len() as u64) as usize];
        let model = DataModel::ALL[rng.below(3) as usize];
        let q1 = sqlkit::parse_query(e.sql(model)).unwrap();
        let printed = sqlkit::to_sql(&q1);
        let q2 = sqlkit::parse_query(&printed)
            .unwrap_or_else(|err| panic!("reprint failed: {err}\n{printed}"));
        assert_eq!(q1, q2);
    }
}

/// Execution accuracy is reflexive: every gold query matches itself.
#[test]
fn execution_match_is_reflexive() {
    let f = fixture();
    let mut rng = Rng::new(0xE4E4);
    for _ in 0..64 {
        let e = &f.examples[rng.below(f.examples.len() as u64) as usize];
        let sql = e.sql(DataModel::V3);
        let out = evalkit::execution_match(&f.db, sql, Some(sql));
        assert_eq!(out, evalkit::ExOutcome::Correct);
    }
}

/// Executing the canonical reprint yields the same results as the
/// original text (printer preserves semantics).
#[test]
fn printer_preserves_semantics() {
    let f = fixture();
    let mut rng = Rng::new(0xF00F);
    for _ in 0..64 {
        let e = &f.examples[rng.below(f.examples.len() as u64) as usize];
        let sql = e.sql(DataModel::V3);
        let printed = sqlkit::to_sql(&sqlkit::parse_query(sql).unwrap());
        let a = execute_sql(&f.db, sql).unwrap();
        let b = execute_sql(&f.db, &printed).unwrap();
        assert!(
            a.matches(&b),
            "reprint changed results:\n{sql}\nvs\n{printed}"
        );
    }
}

/// The deterministic RNG respects bounds.
#[test]
fn rng_below_respects_bound() {
    let mut meta = Rng::new(0x5EED);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.below(1_000_000);
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            assert!(r.below(bound) < bound);
        }
    }
}

/// Value total order is antisymmetric and consistent with equality.
#[test]
fn value_total_order_is_consistent() {
    use std::cmp::Ordering;
    let mut rng = Rng::new(0x0DDB0);
    for _ in 0..CASES {
        let (a, b) = (rand_value(&mut rng), rand_value(&mut rng));
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse(), "{a:?} vs {b:?}");
        if ab == Ordering::Equal {
            assert!(a.group_eq(&b), "{a:?} vs {b:?}");
        }
    }
}

/// Value total order is transitive.
#[test]
fn value_total_order_is_transitive() {
    use std::cmp::Ordering::Greater;
    let mut rng = Rng::new(0x7A417);
    for _ in 0..CASES {
        let (a, b, c) = (
            rand_value(&mut rng),
            rand_value(&mut rng),
            rand_value(&mut rng),
        );
        let (ab, bc, ac) = (a.total_cmp(&b), b.total_cmp(&c), a.total_cmp(&c));
        if ab != Greater && bc != Greater {
            assert_ne!(ac, Greater, "{a:?} <= {b:?} <= {c:?}");
        }
    }
}

/// SQL LIKE without wildcards is equality under PostgreSQL and
/// ASCII-case-insensitive equality under SQLite.
#[test]
fn like_without_wildcards_is_equality() {
    let chars = alpha_space();
    let mut rng = Rng::new(0x11BE);
    for _ in 0..CASES {
        let s = rand_from(&mut rng, &chars, 0, 20);
        let t = rand_from(&mut rng, &chars, 0, 20);
        assert_eq!(
            sqlengine::like_match(&s, &t, Dialect::Postgres),
            s == t,
            "{s:?} LIKE {t:?}"
        );
        assert_eq!(
            sqlengine::like_match(&s, &t, Dialect::Sqlite),
            s.eq_ignore_ascii_case(&t),
            "{s:?} LIKE {t:?} (sqlite)"
        );
    }
}

/// `%pattern%` matches exactly the containment relation (dialects agree
/// on single-case inputs).
#[test]
fn like_percent_wrapping_is_contains() {
    let lower: Vec<char> = ('a'..='z').collect();
    let mut rng = Rng::new(0xC047);
    for _ in 0..CASES {
        let s = rand_from(&mut rng, &lower, 0, 15);
        let inner = rand_from(&mut rng, &lower, 1, 5);
        let pattern = format!("%{inner}%");
        for d in Dialect::ALL {
            assert_eq!(
                sqlengine::like_match(&s, &pattern, d),
                s.contains(&inner),
                "{s:?} LIKE {pattern:?} ({d})"
            );
        }
    }
}

/// Embedding cosine similarity is symmetric and bounded.
#[test]
fn cosine_is_symmetric_and_bounded() {
    let mut rng = Rng::new(0xC0517E);
    for _ in 0..CASES {
        let a = rand_string(&mut rng, 60);
        let b = rand_string(&mut rng, 60);
        let (ea, eb) = (nlq::embed::embed(&a), nlq::embed::embed(&b));
        let ab = nlq::embed::cosine(&ea, &eb);
        let ba = nlq::embed::cosine(&eb, &ea);
        assert!((ab - ba).abs() < 1e-5);
        assert!((-1.01..=1.01).contains(&ab));
    }
}

/// Query analysis never panics on arbitrary text and reports non-trivial
/// lengths for non-empty input.
#[test]
fn analyze_sql_total() {
    let mut rng = Rng::new(0xA2A1);
    for _ in 0..CASES {
        let mut s = rand_string(&mut rng, 119);
        if s.is_empty() {
            s.push('x');
        }
        let stats = sqlkit::analyze_sql(&s);
        assert!(stats.chars > 0);
    }
}

/// count(*) under a filter equals the cardinality of the projected rows
/// under the same filter.
#[test]
fn count_star_equals_row_cardinality() {
    let f = fixture();
    let mut rng = Rng::new(0xCC);
    for _ in 0..32 {
        let idx = rng.below(86) as usize;
        let team = &footballdb::names::NATIONAL_TEAMS[idx].0;
        let c = execute_sql(
            &f.db,
            &format!("SELECT count(*) FROM plays_match WHERE teamname = '{team}'"),
        )
        .unwrap();
        let rows = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM plays_match WHERE teamname = '{team}'"),
        )
        .unwrap();
        assert_eq!(c.rows[0][0], Value::Int(rows.len() as i64));
    }
}

/// DISTINCT never returns more rows than ALL.
#[test]
fn distinct_is_a_contraction() {
    let f = fixture();
    for col in ["team_role", "teamname", "goals", "result"] {
        let all = execute_sql(&f.db, &format!("SELECT {col} FROM plays_match")).unwrap();
        let distinct =
            execute_sql(&f.db, &format!("SELECT DISTINCT {col} FROM plays_match")).unwrap();
        assert!(distinct.len() <= all.len());
        assert!(!distinct.is_empty());
    }
}

/// LIMIT k returns at most k rows, and a prefix of the unlimited ordered
/// result.
#[test]
fn limit_truncates_ordered_results() {
    let f = fixture();
    let full = execute_sql(
        &f.db,
        "SELECT match_id FROM plays_match ORDER BY match_id, team_id",
    )
    .unwrap();
    let mut rng = Rng::new(0x117);
    for _ in 0..24 {
        let k = 1 + rng.below(39);
        let lim = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM plays_match ORDER BY match_id, team_id LIMIT {k}"),
        )
        .unwrap();
        assert!(lim.len() as u64 <= k);
        assert_eq!(&full.rows[..lim.len()], &lim.rows[..]);
    }
}

/// Adding a conjunct never increases the result cardinality.
#[test]
fn conjunction_is_monotone() {
    let f = fixture();
    let mut rng = Rng::new(0xC0E1);
    for _ in 0..22 {
        let idx = rng.below(22) as usize;
        let year = footballdb::names::WORLD_CUPS[idx].0;
        let base = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM match WHERE year = {year}"),
        )
        .unwrap();
        let narrowed = execute_sql(
            &f.db,
            &format!("SELECT match_id FROM match WHERE year = {year} AND round = 'Final'"),
        )
        .unwrap();
        assert!(narrowed.len() <= base.len());
        assert_eq!(narrowed.len(), 1, "every cup has exactly one final");
    }
}

/// UNION ALL cardinality is the sum of its arms; UNION's is at most that
/// sum.
#[test]
fn union_cardinalities() {
    let f = fixture();
    let mut rng = Rng::new(0x0410);
    for _ in 0..12 {
        let idx = rng.below(22) as usize;
        let year = footballdb::names::WORLD_CUPS[idx].0;
        let arm = format!(
            "SELECT teamname FROM plays_match AS p JOIN match AS m \
             ON p.match_id = m.match_id WHERE m.year = {year}"
        );
        let a = execute_sql(&f.db, &arm).unwrap();
        let both = execute_sql(&f.db, &format!("{arm} UNION ALL {arm}")).unwrap();
        assert_eq!(both.len(), 2 * a.len());
        let dedup = execute_sql(&f.db, &format!("{arm} UNION {arm}")).unwrap();
        assert!(dedup.len() <= a.len());
    }
}

/// Differential access-path property: for every gold query (all three
/// data models), indexed execution is bit-identical — columns, rows, and
/// row order — to forced-sequential-scan execution.
///
/// Runs both modes inside one test because [`set_force_seqscan`] is
/// process-wide, and takes [`MODE_LOCK`] to serialize with the
/// conformance-corpus property below.
#[test]
fn indexed_execution_is_bit_identical_to_seqscan() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f = fixture();
    let domain = generate(footballdb::DEFAULT_SEED);
    let mut rng = Rng::new(0x1D3);
    let mut cases = Vec::new();
    for _ in 0..96 {
        let e = &f.examples[rng.below(f.examples.len() as u64) as usize];
        let model = DataModel::ALL[rng.below(3) as usize];
        cases.push((model, e.sql(model).to_string()));
    }
    let dbs: Vec<(DataModel, sqlengine::Database)> = DataModel::ALL
        .iter()
        .map(|&m| (m, load(&domain, m)))
        .collect();
    type CaseResult = Result<(Vec<String>, Vec<Vec<Value>>), String>;
    let run_all = |force: bool| -> Vec<CaseResult> {
        set_force_seqscan(Some(force));
        let out = cases
            .iter()
            .map(|(model, sql)| {
                let db = &dbs.iter().find(|(m, _)| m == model).unwrap().1;
                execute_sql(db, sql)
                    .map(|rs| (rs.columns.clone(), rs.rows.clone()))
                    .map_err(|e| e.to_string())
            })
            .collect();
        set_force_seqscan(None);
        out
    };
    let indexed = run_all(false);
    let seqscan = run_all(true);
    for (i, (a, b)) in indexed.iter().zip(&seqscan).enumerate() {
        assert_eq!(a, b, "access path changed the result of {:?}", cases[i]);
    }
}

/// The conformance property, at property-test scale: every generated
/// corpus query agrees across {indexed, seqscan} x {fresh, cached} and
/// with the naive reference interpreter. The full sweep runs in the
/// `conformance` bench bin; this keeps a small version of the property
/// in the default test run so corpus or engine regressions fail fast.
#[test]
fn conformance_corpus_has_no_divergences() {
    use sqlengine::conformance::{corpus_db, gen_corpus, run_corpus, CorpusConfig};
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_force_seqscan(None);
    for seed in [17, 29] {
        let db = corpus_db(seed);
        let corpus = gen_corpus(&CorpusConfig {
            seed,
            queries: CASES / 2,
        });
        let report = run_corpus(&db, &corpus);
        assert!(
            report.is_clean(),
            "seed {seed}: {} divergence(s), first:\n{}",
            report.divergences.len(),
            report.divergences[0]
        );
    }
}

/// Satellite of the dialect work: division semantics pinned in BOTH
/// executors (row-at-a-time and vectorized) under BOTH dialects.
/// PostgreSQL: `/` on integers truncates and a zero divisor is an
/// error (integer or float). SQLite: `/` on integers is real-valued
/// and a zero divisor yields NULL. Takes [`MODE_LOCK`] because both
/// the executor and dialect switches are process-global.
#[test]
fn division_semantics_hold_in_both_dialects_and_executors() {
    use sqlengine::conformance::dialect_db;
    use sqlengine::{set_dialect, set_vectorized};
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = dialect_db();
    let run = |sql: &str| {
        execute_sql(&db, sql)
            .map(|rs| rs.rows)
            .map_err(|e| e.to_string())
    };
    // nums(n) holds 1, 2, 10.
    for vectorized in [false, true] {
        set_vectorized(Some(vectorized));

        set_dialect(Some(Dialect::Postgres));
        assert_eq!(
            run("SELECT n / 4 FROM nums ORDER BY n"),
            Ok(vec![
                vec![Value::Int(0)],
                vec![Value::Int(0)],
                vec![Value::Int(2)]
            ]),
            "postgres truncating division (vectorized: {vectorized})"
        );
        for sql in ["SELECT n / 0 FROM nums", "SELECT n / 0.0 FROM nums"] {
            let err = run(sql).expect_err("postgres zero divisor must error");
            assert!(
                err.contains("division by zero"),
                "unexpected message {err:?} for {sql} (vectorized: {vectorized})"
            );
        }

        set_dialect(Some(Dialect::Sqlite));
        assert_eq!(
            run("SELECT n / 4 FROM nums ORDER BY n"),
            Ok(vec![
                vec![Value::Float(0.25)],
                vec![Value::Float(0.5)],
                vec![Value::Float(2.5)]
            ]),
            "sqlite real-valued division (vectorized: {vectorized})"
        );
        for sql in ["SELECT n / 0 FROM nums", "SELECT n / 0.0 FROM nums"] {
            assert_eq!(
                run(sql),
                Ok(vec![vec![Value::Null]; 3]),
                "sqlite zero divisor yields NULL (vectorized: {vectorized})"
            );
        }
        set_dialect(None);
    }
    set_vectorized(None);
}

/// The canonical float key: `-0.0` collapses onto `0.0`, non-finite
/// values pass through unchanged, and canonicalization is idempotent
/// over arbitrary bit patterns (idempotence is what makes canon
/// equality transitive, so sort order and equality can never disagree).
#[test]
fn canon_f64_normalizes_zero_and_preserves_non_finite() {
    use sqlengine::canon_f64;
    assert_eq!(canon_f64(-0.0).to_bits(), 0.0f64.to_bits());
    assert_eq!(canon_f64(0.0).to_bits(), 0.0f64.to_bits());
    assert!(canon_f64(f64::NAN).is_nan());
    assert_eq!(canon_f64(f64::INFINITY), f64::INFINITY);
    assert_eq!(canon_f64(f64::NEG_INFINITY), f64::NEG_INFINITY);
    let mut rng = Rng::new(0xD1A);
    for i in 0..CASES {
        // Raw bit patterns cover subnormals, NaN payloads, and both
        // zero signs alongside ordinary magnitudes.
        let f = f64::from_bits(rng.next_u64());
        let c = canon_f64(f);
        if c.is_nan() {
            assert!(f.is_nan(), "case {i}: NaN appeared from {f:?}");
        } else {
            assert_eq!(
                canon_f64(c).to_bits(),
                c.to_bits(),
                "case {i}: canon_f64 is not idempotent on {f:?}"
            );
        }
    }
}

#[test]
fn hardness_uniform_sampling_never_exceeds_pool() {
    let f = fixture();
    let pool: Vec<usize> = (0..f.examples.len()).collect();
    let mut rng = Rng::new(5);
    let sel = nlq::gold::hardness_uniform_sample(&f.examples, &pool, 10_000, &mut rng);
    assert!(sel.len() <= f.examples.len());
    let mut sorted = sel.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), sel.len(), "sampling produced duplicates");
}
