//! Integration: the failure-forensics layer.
//!
//! Drives `sqlkit::diff` + `evalkit::forensics` end to end on a seeded
//! small-scale grid: golden fingerprint pins, the bucket-sum invariant
//! (clause-diff buckets account for every `wrong_result` item), the
//! byte-identity of the fingerprint JSON across thread counts and cache
//! states, and differ property tests over the gold corpus.
//!
//! The full-scale sweep lives in
//! `cargo run --release -p bench --bin forensics`.

use evalkit::{
    classify_item, run_finetuned_grid, set_thread_override, wrong_result_total, EvalSetup,
    FailureKind, ForensicsRegistry, RunResult,
};
use std::sync::{Mutex, OnceLock};

/// Serializes tests that toggle the process-global thread override.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> &'static EvalSetup {
    static SETUP: OnceLock<EvalSetup> = OnceLock::new();
    SETUP.get_or_init(|| EvalSetup::small(11))
}

/// The shared seeded mini-run (3 systems x 3 data models, budget 300),
/// computed once under the default thread configuration.
fn runs() -> &'static Vec<RunResult> {
    static RUNS: OnceLock<Vec<RunResult>> = OnceLock::new();
    RUNS.get_or_init(|| {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        run_finetuned_grid(setup(), &[300])
    })
}

#[test]
fn every_wrong_result_item_is_classified_or_explicitly_unclassified() {
    let s = setup();
    let mut wrong = 0usize;
    let mut unclassified = 0usize;
    for run in runs() {
        for item in &run.items {
            if item.failure != Some(FailureKind::WrongResult) {
                continue;
            }
            wrong += 1;
            let gold = s
                .benchmark
                .test
                .iter()
                .find(|g| g.id == item.item_id)
                .expect("every item maps to a gold example");
            let f = classify_item(gold.sql(run.model), item).expect("failed item classifies");
            // The crack-the-bucket contract: a non-empty clause-diff
            // classification, or an explicit unclassified tag — never a
            // silently empty verdict.
            assert!(
                !f.classes.is_empty() || f.unclassified,
                "item {} of {}/{} has an empty verdict",
                item.item_id,
                run.system,
                run.model
            );
            if f.unclassified {
                unclassified += 1;
            }
        }
    }
    assert!(wrong > 0, "the mini-run must produce wrong_result items");
    // The ≤5% unclassified ceiling, enforced here and in CI smoke.
    assert!(
        (unclassified as f64) <= 0.05 * wrong as f64,
        "{unclassified}/{wrong} unclassified exceeds the 5% ceiling"
    );
}

#[test]
fn fingerprint_buckets_sum_to_the_wrong_result_total() {
    let reg = ForensicsRegistry::from_runs(setup(), runs());
    let wrong = wrong_result_total(runs());
    assert!(wrong > 0);
    assert!(reg.sum_matches_wrong_result(wrong));
    let t = reg.totals();
    assert_eq!(t.classified + t.unclassified, t.wrong_result);
    assert_eq!(t.wrong_result, wrong);
    // Per-cell, not just in aggregate.
    for (key, c) in reg.cells() {
        assert_eq!(
            c.classified + c.unclassified,
            c.wrong_result,
            "cell {key:?} breaks the bucket-sum invariant"
        );
        assert!(c.wrong_result <= c.failed, "cell {key:?}");
    }
}

/// Golden pin of the seeded mini-run's grand totals. Any change to the
/// differ's canonicalization, the classifier, or the grid itself must
/// consciously update these numbers.
#[test]
fn golden_fingerprint_snapshot_for_the_seeded_mini_run() {
    let reg = ForensicsRegistry::from_runs(setup(), runs());
    let t = reg.totals();
    assert_eq!(t.classified + t.unclassified, t.wrong_result);
    let json = reg.deterministic_json("  ");
    let pin = |field: &str| -> u64 {
        let tail = json
            .split(&format!("\"{field}\": "))
            .nth(1)
            .unwrap_or_else(|| panic!("missing {field} in {json}"));
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Grand totals (first occurrence of each field is the totals block).
    assert_eq!(pin("failed"), t.failed);
    assert_eq!(
        t.failed,
        runs()
            .iter()
            .flat_map(|r| &r.items)
            .filter(|i| i.failure.is_some())
            .count() as u64
    );
    // The snapshot proper: seeded, so stable until semantics change.
    let got = (t.failed, t.wrong_result, t.classified, t.unclassified);
    assert_eq!(got, (251, 186, 186, 0), "fingerprint totals moved: {got:?}");
}

#[test]
fn fingerprint_json_is_identical_across_threads_and_cache_states() {
    let s = setup();
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pass = |threads: usize, cold: bool| {
        set_thread_override(Some(threads));
        if cold {
            s.clear_query_caches();
        }
        let runs = run_finetuned_grid(s, &[300]);
        ForensicsRegistry::from_runs(s, &runs).deterministic_json("  ")
    };
    let serial_cold = pass(1, true);
    let pooled_cold = pass(8, true);
    let pooled_warm = pass(8, false);
    set_thread_override(None);
    assert_eq!(
        serial_cold, pooled_cold,
        "thread count leaked into fingerprints"
    );
    assert_eq!(
        pooled_cold, pooled_warm,
        "cache state leaked into fingerprints"
    );
}

/// Differ properties over the real gold corpus: reflexivity (a query
/// never diffs against itself, whatever its shape) and size symmetry
/// (gold/pred order never changes the edit count).
#[test]
fn differ_properties_hold_over_the_gold_corpus() {
    use footballdb::DataModel;
    let s = setup();
    let examples: Vec<_> = s
        .benchmark
        .test
        .iter()
        .chain(s.benchmark.train.iter())
        .collect();
    assert!(!examples.is_empty());
    for ex in &examples {
        for model in DataModel::ALL {
            let sql = ex.sql(model);
            let d =
                sqlkit::diff_sql(sql, sql).unwrap_or_else(|| panic!("gold SQL must parse: {sql}"));
            assert!(d.is_empty(), "diff(q, q) not empty for {sql}: {d:?}");
        }
        // Cross-model pairs of the same question are realistic
        // gold/pred divergences; size symmetry must hold on all.
        let (a, b) = (ex.sql(DataModel::V1), ex.sql(DataModel::V3));
        let ab = sqlkit::diff_sql(a, b).unwrap();
        let ba = sqlkit::diff_sql(b, a).unwrap();
        assert_eq!(
            ab.distance(),
            ba.distance(),
            "asymmetric size for {a} vs {b}: {ab:?} / {ba:?}"
        );
    }
}
