//! Integration: schema-morph round-trip and equivalence properties.
//!
//! The morph engine claims its transforms are semantics-preserving and
//! (for split/merge and rename pairs) invertible. This suite holds those
//! claims on the real v1 instance:
//!
//! * `denormalize ∘ normalize` (merge of a fresh split) restores the
//!   catalog shape AND gold EX on real data;
//! * `rename ∘ rename⁻¹` is an exact identity on both the catalog and
//!   the rewritten SQL text;
//! * a sample of synthesized models answers the gold corpus EX-equal to
//!   v1 end to end (migrated data + co-rewritten SQL).

use footballdb::{generate, load, synthesize_models, v1_shape, DataModel};
use sqlengine::morph::{migrate_database, schema_of};
use sqlengine::{execute_sql, Database};
use sqlkit::morph::{apply_chain, rewrite_sql, MorphOp};
use std::sync::OnceLock;

fn v1() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| load(&generate(footballdb::DEFAULT_SEED), DataModel::V1))
}

const GOLD: &[&str] = &[
    "SELECT T2.teamname FROM world_cup AS T1 JOIN national_team AS T2 \
     ON T1.winner = T2.team_id WHERE T1.year = 2014",
    "SELECT name, capacity FROM stadium WHERE capacity > 60000 ORDER BY capacity DESC",
    "SELECT count(*) FROM player WHERE position = 'Goalkeeper'",
    "SELECT T1.year, count(*) FROM world_cup AS T1 JOIN squad AS T2 \
     ON T1.world_cup_id = T2.world_cup_id GROUP BY T1.year ORDER BY T1.year",
];

/// EX over a transform chain: migrated data + co-rewritten SQL must
/// answer every gold query identically to v1.
fn assert_chain_ex(ops: &[MorphOp]) {
    let db = migrate_database(v1(), ops).expect("chain migrates");
    for sql in GOLD {
        let rewritten = rewrite_sql(&v1_shape(), ops, sql).expect("chain rewrites");
        let a = execute_sql(v1(), sql).expect("v1 executes");
        let b = execute_sql(&db, &rewritten).expect("morphed executes");
        assert!(
            a.matches(&b),
            "EX mismatch on morphed model:\n  {rewritten}"
        );
    }
}

#[test]
fn merge_after_split_restores_shape_and_ex() {
    // Normalize stadium into a 1:1 extension, then denormalize it back.
    let split = MorphOp::SplitTable {
        table: "stadium".to_string(),
        ext: "stadium_detail".to_string(),
        moved: vec!["city".to_string(), "capacity".to_string()],
    };
    let merge = MorphOp::MergeTable {
        ext: "stadium_detail".to_string(),
        into: "stadium".to_string(),
    };
    let chain = [split, merge];

    // Catalog shape: the round trip lands exactly where it started
    // (column order may differ; shape_key is order-insensitive).
    let shape = v1_shape();
    let round = apply_chain(&shape, &chain).expect("round trip applies");
    assert_eq!(shape.shape_key(), round.shape_key());

    // Data + SQL: EX holds at the split point and after the round trip.
    assert_chain_ex(&chain[..1]);
    assert_chain_ex(&chain);

    // And the round-tripped database matches v1's catalog fingerprint
    // modulo column order: same table set, same columns per table.
    let db = migrate_database(v1(), &chain).expect("round trip migrates");
    assert_eq!(schema_of(db.catalog()).shape_key(), shape.shape_key());
}

#[test]
fn rename_then_inverse_is_exact_identity() {
    let there = MorphOp::RenameTable {
        from: "match".to_string(),
        to: "fixture".to_string(),
    };
    let back = MorphOp::RenameTable {
        from: "fixture".to_string(),
        to: "match".to_string(),
    };
    let chain = [there.clone(), back.clone()];
    let shape = v1_shape();
    assert_eq!(
        shape.shape_key(),
        apply_chain(&shape, &chain).unwrap().shape_key()
    );
    // SQL text round-trips exactly, not just EX-equivalently.
    let sql = "SELECT count(*) FROM match WHERE round = 'Final'";
    assert_eq!(rewrite_sql(&shape, &chain, sql).unwrap(), sql);

    let col_there = MorphOp::RenameColumn {
        from: "teamname".to_string(),
        to: "team_label".to_string(),
    };
    let col_back = MorphOp::RenameColumn {
        from: "team_label".to_string(),
        to: "teamname".to_string(),
    };
    let chain = [col_there, col_back];
    assert_eq!(
        shape.shape_key(),
        apply_chain(&shape, &chain).unwrap().shape_key()
    );
    let sql = "SELECT teamname FROM national_team ORDER BY teamname";
    assert_eq!(rewrite_sql(&shape, &chain, sql).unwrap(), sql);
    // And the identity holds through real data too.
    assert_chain_ex(&chain);
}

#[test]
fn synthesized_models_answer_gold_ex_equal() {
    let corpus: Vec<String> = GOLD.iter().map(|s| s.to_string()).collect();
    let models = synthesize_models(footballdb::DEFAULT_SEED, 6, &corpus);
    assert_eq!(models.len(), 6);
    for m in &models {
        assert_chain_ex(&m.ops);
    }
}
