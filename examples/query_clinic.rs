//! Query clinic: analyze any SQL query the way the benchmark pipeline
//! does — characteristics, Spider hardness, Spider-parser compatibility,
//! SemQL representability per data model, and (when executable) results
//! on the FootballDB instances.
//!
//! ```text
//! cargo run --release --example query_clinic -- \
//!   "SELECT count(*) FROM world_cup AS T1 \
//!    JOIN national_team AS T2 ON T1.winner = T2.team_id \
//!    WHERE T2.teamname = 'Brazil'"
//! ```
//!
//! Without an argument it analyzes the paper's Figure 4 v1 query.

use footballdb::{generate, load, DataModel};
use sqlengine::execute;
use textosql::{JoinGraph, SemQl};

const DEFAULT_SQL: &str = "SELECT T1.home_team_goals, T1.away_team_goals FROM match AS T1 \
     JOIN national_team AS T2 ON T1.home_team_id = T2.team_id \
     JOIN national_team AS T3 ON T1.away_team_id = T3.team_id \
     JOIN world_cup AS T4 ON T1.world_cup_id = T4.world_cup_id \
     WHERE T2.teamname = 'Germany' AND T3.teamname = 'Brazil' AND T4.year = 2014";

fn main() {
    let sql = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_SQL.to_string());
    println!("SQL: {sql}\n");

    let query = match sqlkit::parse_query(&sql) {
        Ok(q) => q,
        Err(e) => {
            println!("parse error: {e}");
            std::process::exit(1);
        }
    };

    let stats = sqlkit::analyze(&query);
    println!("characteristics:");
    println!(
        "  joins={} projections={} filters={}",
        stats.joins, stats.projections, stats.filters
    );
    println!(
        "  aggregations={} set_ops={} subqueries={}",
        stats.aggregations, stats.set_ops, stats.subqueries
    );
    println!("  length: {} chars / {} tokens", stats.chars, stats.tokens);
    println!("Spider hardness: {}", sqlkit::classify(&query));

    match sqlkit::spider_check(&query) {
        Ok(()) => println!("Spider parser: compatible"),
        Err(issue) => println!("Spider parser: INCOMPATIBLE — {issue}"),
    }

    println!("\nSemQL IR / join-path per data model:");
    match SemQl::from_query(&query) {
        Err(e) => println!("  no IR form: {e}"),
        Ok(ir) => {
            for model in DataModel::ALL {
                let graph = JoinGraph::from_catalog(&model.catalog());
                match ir.to_sql(&graph) {
                    Ok(rec) => println!("  {model}: reconstructs to: {rec}"),
                    Err(e) => println!("  {model}: join path fails — {e}"),
                }
            }
        }
    }

    println!("\nexecution against the FootballDB instances:");
    let domain = generate(footballdb::DEFAULT_SEED);
    for model in DataModel::ALL {
        let db = load(&domain, model);
        match execute(&db, &query) {
            Ok(rs) => println!("  {model}: {} row(s)", rs.len()),
            Err(e) => println!("  {model}: {e}"),
        }
    }
}
