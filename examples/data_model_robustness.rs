//! The paper's headline experiment in miniature: how does the *data
//! model* change Text-to-SQL accuracy, and how much of that robustness
//! comes from PK/FK key information?
//!
//! Runs T5-Picard (no keys) and T5-Picard_Keys over all three data
//! models at increasing train sizes, then shows the SemQL join-path
//! representability that explains ValueNet's v1 behaviour.
//!
//! ```text
//! cargo run --release --example data_model_robustness
//! ```

use evalkit::{ablation, run_config, EvalSetup};
use footballdb::DataModel;
use textosql::{Budget, SystemKind};

fn main() {
    let setup = EvalSetup::small(7);
    println!(
        "evaluating on {} test questions per data model\n",
        setup.benchmark.test.len()
    );

    println!("execution accuracy (T5-Picard without vs with PK/FK keys):");
    println!(
        "{:<8}{:>8}{:>14}{:>14}{:>10}",
        "model", "train", "without", "with keys", "gain"
    );
    for model in DataModel::ALL {
        for n in [100usize, 300] {
            let pool: Vec<_> = setup.benchmark.train.iter().take(n).cloned().collect();
            let without = run_config(
                &setup,
                SystemKind::T5Picard,
                model,
                Budget::FineTuned(n),
                &pool,
                "example",
            )
            .accuracy();
            let with = run_config(
                &setup,
                SystemKind::T5PicardKeys,
                model,
                Budget::FineTuned(n),
                &pool,
                "example",
            )
            .accuracy();
            println!(
                "{:<8}{:>8}{:>13.1}%{:>13.1}%{:>+9.1}pp",
                model.label(),
                n,
                without * 100.0,
                with * 100.0,
                (with - without) * 100.0
            );
        }
    }

    println!("\nwhy v1 is hostile to IR-based systems (SemQL join-path ceiling):");
    for a in ablation::joinpath_ablation(&setup) {
        println!(
            "  {}: {:>5.1}% of gold test queries even *representable* by the SemQL pipeline",
            a.model,
            a.representable_fraction() * 100.0
        );
    }

    println!("\nmulti-FK table pairs per data model (the join-path blockers):");
    for model in DataModel::ALL {
        let graph = textosql::JoinGraph::from_catalog(&model.catalog());
        let pairs = graph.ambiguous_pairs();
        if pairs.is_empty() {
            println!("  {model}: none");
        } else {
            for (a, b, n) in pairs {
                println!("  {model}: {a} \u{2194} {b} ({n} FK references)");
            }
        }
    }
}
