//! Quickstart: build FootballDB, ask a question, get SQL and results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use footballdb::{generate, load, DataModel};
use nlq::gold::{build_benchmark, PipelineConfig};
use sqlengine::execute_sql;
use textosql::{
    predict, profile_items, success_probabilities, Budget, JoinGraph, RetrievalIndex,
    SystemContext, SystemKind,
};
use xrng::Rng;

fn main() {
    // 1. Synthesize the dataset and materialize the v3 data model.
    let domain = generate(footballdb::DEFAULT_SEED);
    let model = DataModel::V3;
    let db = load(&domain, model);
    println!(
        "FootballDB {model}: {} tables, {} rows",
        db.catalog().table_count(),
        db.total_rows()
    );

    // 2. Build a small gold benchmark (training pool for few-shot).
    let cfg = PipelineConfig {
        raw_questions: 800,
        pool_size: 300,
        selected_size: 120,
        test_size: 20,
        clusters: 14,
        ..PipelineConfig::default()
    };
    let bench = build_benchmark(&domain, 7, &cfg);
    println!(
        "benchmark: {} train / {} test questions",
        bench.train.len(),
        bench.test.len()
    );

    // 3. Run GPT-3.5-style few-shot prediction on a test question.
    let graph = JoinGraph::from_catalog(&model.catalog());
    let index = RetrievalIndex::build(&bench.train);
    let ctx = SystemContext {
        model,
        db: &db,
        graph: &graph,
        index: Some(&index),
        budget: Budget::FewShot(10),
    };
    let profiles = profile_items(&bench.test, model, &graph);
    let probs = success_probabilities(SystemKind::Gpt35, model, Budget::FewShot(10), &profiles);

    let item = &bench.test[0];
    let mut rng = Rng::new(42);
    let pred = predict(SystemKind::Gpt35, item, &ctx, probs[0], &mut rng);

    println!("\nQ: {}", item.question);
    match &pred.sql {
        Some(sql) => {
            println!("predicted SQL: {sql}");
            println!(
                "latency: {:.2}s (simulated), {} shots",
                pred.latency, pred.shots_used
            );
            match execute_sql(&db, sql) {
                Ok(rs) => print!("\nresults:\n{rs}"),
                Err(e) => println!("execution failed: {e}"),
            }
        }
        None => println!("the system produced no SQL"),
    }

    // 4. Score it with execution matching against the gold label.
    let outcome = evalkit::execution_match(&db, item.sql(model), pred.sql.as_deref());
    println!("\nEX outcome: {outcome:?}");
}
