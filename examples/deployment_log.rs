//! Simulates the nine-month FootballDB deployment and prints the
//! Table-1 statistics plus a sample of the noisy traffic the paper
//! describes: non-English questions, out-of-scope requests, unanswerable
//! questions, and misspelled entity names.
//!
//! ```text
//! cargo run --release --example deployment_log
//! ```

use footballdb::generate;
use nlq::log::{simulate_log, Category, Feedback, LogStats};
use nlq::PAPER_LOG_SIZE;
use xrng::Rng;

fn main() {
    let domain = generate(footballdb::DEFAULT_SEED);
    let mut rng = Rng::new(2022);
    let entries = simulate_log(&domain, &mut rng, PAPER_LOG_SIZE);
    let stats = LogStats::from_entries(&entries);

    println!("simulated deployment log (paper Table 1):");
    println!("  #NL questions issued        {}", stats.questions);
    println!("  #Times SQL generated        {}", stats.sql_generated);
    println!("  #Times no SQL generated     {}", stats.no_sql_generated);
    println!("  #Thumbs up                  {}", stats.thumbs_up);
    println!("  #Thumbs down                {}", stats.thumbs_down);
    println!("  #User corrected SQL queries {}", stats.corrected);

    println!("\ncategory mix:");
    for (cat, label) in [
        (Category::Answerable, "answerable football questions"),
        (Category::NonEnglish, "non-English"),
        (Category::OutOfScope, "out of scope"),
        (Category::Unanswerable, "unanswerable (semantic mismatch)"),
    ] {
        let n = entries.iter().filter(|e| e.category == cat).count();
        println!(
            "  {label:<36}{n:>6} ({:.1}%)",
            100.0 * n as f64 / entries.len() as f64
        );
    }

    println!("\nsample interactions:");
    let mut shown = std::collections::HashSet::new();
    for e in &entries {
        if shown.insert(std::mem::discriminant(&e.category)) {
            let fb = match e.feedback {
                Feedback::ThumbsUp => " [thumbs up]",
                Feedback::ThumbsDown => " [thumbs down]",
                Feedback::None => "",
            };
            let corr = if e.corrected {
                " [expert corrected]"
            } else {
                ""
            };
            println!(
                "  {:?}: \"{}\"{}{}{}",
                e.category,
                e.question,
                if e.sql_generated {
                    ""
                } else {
                    " [no SQL produced]"
                },
                fb,
                corr
            );
        }
        if shown.len() == 4 {
            break;
        }
    }

    // Show the misspelling phenomenon explicitly.
    println!("\ntypo injection examples:");
    let q = "Which club does Carlos Silva play for?";
    for _ in 0..3 {
        println!("  \"{}\"", nlq::log::add_typo(q, &mut rng));
    }
}
