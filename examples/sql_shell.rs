//! Interactive SQL shell over the generated FootballDB instances.
//!
//! ```text
//! cargo run --release --example sql_shell
//! sql(v3)> SELECT teamname FROM world_cup_result WHERE winner = 'True' LIMIT 5
//! sql(v3)> \model v1
//! sql(v1)> \schema match
//! sql(v1)> \quit
//! ```
//!
//! Commands: `\model v1|v2|v3` switches the data model, `\schema [table]`
//! prints schema information, `\tables` lists tables, `\quit` exits.
//! Anything else is executed as SQL.

use footballdb::{generate, load_all, DataModel};
use sqlengine::{execute_sql, Database};
use std::io::{BufRead, Write};

fn find(dbs: &[(DataModel, Database); 3], m: DataModel) -> &Database {
    &dbs.iter().find(|(x, _)| *x == m).unwrap().1
}

fn print_schema(db: &Database, table: Option<&str>) {
    for t in &db.catalog().tables {
        if let Some(name) = table {
            if !t.name.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        println!("{}({})", t.name, cols.join(", "));
        if table.is_some() {
            if !t.primary_key.is_empty() {
                println!("  primary key: {}", t.primary_key.join(", "));
            }
            for fk in &t.foreign_keys {
                println!(
                    "  foreign key: {} -> {}.{}",
                    fk.columns.join(","),
                    fk.ref_table,
                    fk.ref_columns.join(",")
                );
            }
        }
    }
}

fn main() {
    eprintln!(
        "generating FootballDB (seed {})...",
        footballdb::DEFAULT_SEED
    );
    let domain = generate(footballdb::DEFAULT_SEED);
    let dbs = load_all(&domain);
    let mut model = DataModel::V3;

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sql({model})> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            let mut parts = cmd.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("model") => match parts.next() {
                    Some("v1") => model = DataModel::V1,
                    Some("v2") => model = DataModel::V2,
                    Some("v3") => model = DataModel::V3,
                    _ => eprintln!("usage: \\model v1|v2|v3"),
                },
                Some("tables") => {
                    for t in &find(&dbs, model).catalog().tables {
                        println!(
                            "{:<20} {:>7} rows",
                            t.name,
                            find(&dbs, model).row_count(&t.name)
                        );
                    }
                }
                Some("schema") => print_schema(find(&dbs, model), parts.next()),
                Some("explain") => {
                    let sql = cmd.trim_start_matches("explain").trim();
                    match sqlengine::explain_sql(find(&dbs, model), sql) {
                        Ok(plan) => print!("{plan}"),
                        Err(e) => eprintln!("error: {e}"),
                    }
                }
                Some("format") => {
                    let sql = cmd.trim_start_matches("format").trim();
                    println!("{}", sqlkit::format_sql(sql));
                }
                _ => eprintln!(
                    "commands: \\model, \\tables, \\schema [table], \\explain <sql>, \
                     \\format <sql>, \\quit"
                ),
            }
            continue;
        }
        let started = std::time::Instant::now();
        match execute_sql(find(&dbs, model), line) {
            Ok(rs) => {
                let shown = rs.rows.len().min(25);
                print!("{}", truncated(&rs, shown));
                println!(
                    "({} row(s){} in {:.1} ms)",
                    rs.rows.len(),
                    if shown < rs.rows.len() {
                        format!(", showing {shown}")
                    } else {
                        String::new()
                    },
                    started.elapsed().as_secs_f64() * 1000.0
                );
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn truncated(rs: &sqlengine::ResultSet, n: usize) -> String {
    let mut limited = rs.clone();
    limited.rows.truncate(n);
    limited.to_string()
}
