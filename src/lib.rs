//! Umbrella crate re-exporting the workspace libraries for examples and
//! integration tests.
pub use evalkit;
pub use footballdb;
pub use nlq;
pub use serve;
pub use sqlengine;
pub use sqlkit;
pub use textosql;
